package ensemble

import (
	"context"
	"fmt"
	"sort"

	"gcbench/internal/behavior"
)

// maxExhaustivePool bounds the pool size for exact subset enumeration
// (2^22 subset DFS nodes stay well under a second).
const maxExhaustivePool = 22

// Cancellation contract: every search in this package has a Ctx variant
// that checks ctx between search steps — one greedy growth round, one
// exchange pass, one annealing proposal, one beam extension — so a
// deadline-exceeded design request returns within a single step rather
// than running the search to completion. The non-Ctx names wrap the Ctx
// variants with context.Background() and keep their historical
// signatures.

// BestSpreadExhaustive finds, for every size 1..maxSize, the subset of
// pool[idx] with maximum spread, by a single DFS over all subsets with an
// incrementally maintained pairwise-distance sum. Exact, usable for the
// single-algorithm pools of Figure 14 (20 runs each). Returns best[k] for
// ensemble size k (best[0] and best[1] are trivial).
func BestSpreadExhaustive(pool []behavior.Vector, idx []int, maxSize int) ([][]int, error) {
	return BestSpreadExhaustiveCtx(context.Background(), pool, idx, maxSize)
}

// BestSpreadExhaustiveCtx is BestSpreadExhaustive with cooperative
// cancellation, checked at every top-level DFS branch.
func BestSpreadExhaustiveCtx(ctx context.Context, pool []behavior.Vector, idx []int, maxSize int) ([][]int, error) {
	n := len(idx)
	if n > maxExhaustivePool {
		return nil, fmt.Errorf("ensemble: pool of %d too large for exhaustive search (max %d)", n, maxExhaustivePool)
	}
	if maxSize > n {
		maxSize = n
	}
	// Pairwise distances within the pool.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = behavior.Distance(pool[idx[i]], pool[idx[j]])
		}
	}
	bestSum := make([]float64, maxSize+1)
	bestSet := make([][]int, maxSize+1)
	for k := range bestSum {
		bestSum[k] = -1
	}
	cur := make([]int, 0, maxSize)
	var dfs func(start int, sum float64)
	dfs = func(start int, sum float64) {
		k := len(cur)
		if k >= 1 && sum > bestSum[k] {
			bestSum[k] = sum
			bestSet[k] = append([]int(nil), cur...)
		}
		if k == maxSize {
			return
		}
		for j := start; j < n; j++ {
			add := 0.0
			for _, i := range cur {
				add += dist[i][j]
			}
			cur = append(cur, j)
			dfs(j+1, sum+add)
			cur = cur[:len(cur)-1]
		}
	}
	for j := 0; j < n; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur = append(cur, j)
		dfs(j+1, 0)
		cur = cur[:0]
	}

	out := make([][]int, maxSize+1)
	for k := 1; k <= maxSize; k++ {
		set := make([]int, len(bestSet[k]))
		for i, j := range bestSet[k] {
			set[i] = idx[j]
		}
		out[k] = set
	}
	return out, nil
}

// BestSpreadGreedy grows an ensemble by repeatedly adding the candidate
// maximizing the resulting spread, then refines each size with pairwise
// exchange (ImproveSpreadExchange). Used for pools too large to enumerate
// (the unrestricted 215-run corpus of Figure 18). Returns best[k] for
// k = 1..maxSize.
func BestSpreadGreedy(pool []behavior.Vector, idx []int, maxSize int) [][]int {
	out, _ := BestSpreadGreedyCtx(context.Background(), pool, idx, maxSize)
	return out
}

// BestSpreadGreedyCtx is BestSpreadGreedy with cooperative cancellation,
// checked before every growth round and inside the exchange refinement.
func BestSpreadGreedyCtx(ctx context.Context, pool []behavior.Vector, idx []int, maxSize int) ([][]int, error) {
	n := len(idx)
	if maxSize > n {
		maxSize = n
	}
	out := make([][]int, maxSize+1)
	if n == 0 || maxSize == 0 {
		return out, nil
	}

	// Start from the farthest pair (or the single first point for k=1).
	var a, b int
	bestD := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := behavior.Distance(pool[idx[i]], pool[idx[j]]); d > bestD {
				bestD, a, b = d, i, j
			}
		}
	}
	out[1] = []int{idx[a]}

	members := []int{a, b}
	// distSum[j] = Σ_{i∈members} d(j, i) for every pool element.
	distSum := make([]float64, n)
	for j := 0; j < n; j++ {
		distSum[j] = behavior.Distance(pool[idx[j]], pool[idx[a]]) +
			behavior.Distance(pool[idx[j]], pool[idx[b]])
	}
	inSet := make([]bool, n)
	inSet[a], inSet[b] = true, true

	emit := func(k int) error {
		set := make([]int, len(members))
		for i, j := range members {
			set[i] = idx[j]
		}
		refined, err := ImproveSpreadExchangeCtx(ctx, pool, set, idx)
		if err != nil {
			return err
		}
		out[k] = refined
		return nil
	}
	if maxSize >= 2 {
		if err := emit(2); err != nil {
			return nil, err
		}
	}
	for k := 3; k <= maxSize; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestJ, bestAdd := -1, -1.0
		for j := 0; j < n; j++ {
			if inSet[j] {
				continue
			}
			// Adding j: new mean = (pairSum + distSum[j]) / C(k,2).
			if distSum[j] > bestAdd {
				bestAdd, bestJ = distSum[j], j
			}
		}
		if bestJ < 0 {
			break
		}
		inSet[bestJ] = true
		members = append(members, bestJ)
		for j := 0; j < n; j++ {
			distSum[j] += behavior.Distance(pool[idx[j]], pool[idx[bestJ]])
		}
		if err := emit(k); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ImproveSpreadExchange refines an ensemble by swapping members with
// outside candidates while any swap improves spread. Deterministic:
// candidates are scanned in order and the best single swap is applied per
// pass, up to a fixed pass budget.
func ImproveSpreadExchange(pool []behavior.Vector, members, candidates []int) []int {
	out, _ := ImproveSpreadExchangeCtx(context.Background(), pool, members, candidates)
	return out
}

// ImproveSpreadExchangeCtx is ImproveSpreadExchange with cooperative
// cancellation, checked once per exchange pass.
//
// Spread is the mean pairwise distance, so a single swap's effect on the
// pair total can be scored from two maintained aggregates instead of a
// full O(k²) recomputation: memSum[pos] (each member's distance sum to
// the other members) and candSum[ci] (each candidate's distance sum to
// all members). Replacing cur[pos] with cand changes the pair total by
// candSum[ci] - memSum[pos] - d(cur[pos], cand), making each swap
// evaluation O(1) after an O(k·(k+C)) setup and an O(k+C) refresh per
// applied swap — the exchange step drops from O(k³·C) to O(k·C) distance
// evaluations per pass.
func ImproveSpreadExchangeCtx(ctx context.Context, pool []behavior.Vector, members, candidates []int) ([]int, error) {
	cur := append([]int(nil), members...)
	k := len(cur)
	if k < 2 {
		// Spread of a singleton is identically zero; no swap can help.
		sort.Ints(cur)
		return cur, nil
	}
	denom := float64(k * (k - 1) / 2)
	inSet := make(map[int]bool, k)
	for _, m := range cur {
		inSet[m] = true
	}
	memSum := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			d := behavior.Distance(pool[cur[i]], pool[cur[j]])
			memSum[i] += d
			memSum[j] += d
		}
	}
	// candSum stays exact for in-set candidates too (their self-distance
	// is zero), so the uniform per-swap refresh below covers members that
	// get swapped out and become eligible again.
	candSum := make([]float64, len(candidates))
	for ci, c := range candidates {
		for _, m := range cur {
			candSum[ci] += behavior.Distance(pool[c], pool[m])
		}
	}
	const maxPasses = 20
	for pass := 0; pass < maxPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestGain := 1e-12
		bestPos, bestCi := -1, -1
		for pos := range cur {
			for ci, cand := range candidates {
				if inSet[cand] {
					continue
				}
				delta := candSum[ci] - memSum[pos] - behavior.Distance(pool[cur[pos]], pool[cand])
				if gain := delta / denom; gain > bestGain {
					bestGain, bestPos, bestCi = gain, pos, ci
				}
			}
		}
		if bestPos < 0 {
			break
		}
		old, next := cur[bestPos], candidates[bestCi]
		dON := behavior.Distance(pool[old], pool[next])
		for q := range cur {
			if q == bestPos {
				continue
			}
			memSum[q] += behavior.Distance(pool[cur[q]], pool[next]) -
				behavior.Distance(pool[cur[q]], pool[old])
		}
		memSum[bestPos] = candSum[bestCi] - dON
		for ci, c := range candidates {
			candSum[ci] += behavior.Distance(pool[c], pool[next]) -
				behavior.Distance(pool[c], pool[old])
		}
		delete(inSet, old)
		inSet[next] = true
		cur[bestPos] = next
	}
	sort.Ints(cur)
	return cur, nil
}

// BestCoverageGreedy grows an ensemble by repeatedly adding the candidate
// that maximizes coverage, using incremental min-distance maintenance.
// Greedy is the standard near-optimal heuristic for this k-median-style
// objective. Returns best[k] for k = 1..maxSize.
func BestCoverageGreedy(cov *CoverageEstimator, pool []behavior.Vector, idx []int, maxSize int) [][]int {
	out, _ := BestCoverageGreedyCtx(context.Background(), cov, pool, idx, maxSize)
	return out
}

// BestCoverageGreedyCtx is BestCoverageGreedy with cooperative
// cancellation, checked before every candidate's evaluation (the
// dominant cost of a coverage search step).
//
// Candidate evaluation goes through IncrementalCoverage.EvalAdd, which
// rescans only the sample cells the candidate could improve yet returns
// exactly what a fresh full Monte-Carlo estimate would — so the greedy
// trace is identical to the full-recompute implementation it replaced
// (pinned by TestCoverageGreedyTraceMatchesNaive), just cheaper.
func BestCoverageGreedyCtx(ctx context.Context, cov *CoverageEstimator, pool []behavior.Vector, idx []int, maxSize int) ([][]int, error) {
	n := len(idx)
	if maxSize > n {
		maxSize = n
	}
	out := make([][]int, maxSize+1)
	if n == 0 || maxSize <= 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ic, err := NewIncrementalCoverage(cov, nil)
	if err != nil {
		return nil, err
	}
	var members []int
	inSet := make([]bool, n)
	for k := 1; k <= maxSize; k++ {
		bestJ := -1
		bestCov := -1.0
		for j := 0; j < n; j++ {
			if inSet[j] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if c := ic.EvalAdd(pool[idx[j]]); c > bestCov {
				bestCov, bestJ = c, j
			}
		}
		if bestJ < 0 {
			break
		}
		inSet[bestJ] = true
		members = append(members, idx[bestJ])
		ic.Add(pool[idx[bestJ]])
		set := append([]int(nil), members...)
		sort.Ints(set)
		out[k] = set
	}
	return out, nil
}

// ImproveCoverageExchange refines a coverage ensemble by swapping members
// with outside candidates while any swap improves coverage. Swap
// proposals are scored through IncrementalCoverage.EvalSwap — dirty-cell
// rescoring instead of a full Monte-Carlo pass — with results
// bit-identical to the fresh estimates the full-recompute implementation
// used (pinned by TestCoverageExchangeTraceMatchesNaive), so the pass
// budget no longer needs to be tight. Deterministic.
func ImproveCoverageExchange(cov *CoverageEstimator, pool []behavior.Vector, members, candidates []int) []int {
	out, _ := ImproveCoverageExchangeCtx(context.Background(), cov, pool, members, candidates)
	return out
}

// ImproveCoverageExchangeCtx is ImproveCoverageExchange with cooperative
// cancellation, checked before every candidate evaluation.
func ImproveCoverageExchangeCtx(ctx context.Context, cov *CoverageEstimator, pool []behavior.Vector, members, candidates []int) ([]int, error) {
	cur := append([]int(nil), members...)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pts := make([]behavior.Vector, len(cur))
	for i, m := range cur {
		pts[i] = pool[m]
	}
	ic, err := NewIncrementalCoverage(cov, pts)
	if err != nil {
		return nil, err
	}
	curCov := ic.Coverage()
	inSet := make(map[int]bool, len(cur))
	for _, m := range cur {
		inSet[m] = true
	}
	const maxPasses = 5
	for pass := 0; pass < maxPasses; pass++ {
		bestGain := 1e-12
		bestPos, bestCand := -1, -1
		for pos := range cur {
			for _, cand := range candidates {
				if inSet[cand] {
					continue
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				c := ic.EvalSwap(pos, pool[cand])
				if gain := c - curCov; gain > bestGain {
					bestGain, bestPos, bestCand = gain, pos, cand
				}
			}
		}
		if bestPos < 0 {
			break
		}
		delete(inSet, cur[bestPos])
		inSet[bestCand] = true
		cur[bestPos] = bestCand
		// Exact, not curCov += bestGain: committing re-reads the updated
		// cell sums, so accumulated float drift can't steer later passes.
		curCov = ic.Swap(bestPos, pool[bestCand])
	}
	sort.Ints(cur)
	return cur, nil
}
