// Package predict implements the paper's §7 future-work direction: "Can
// we model precisely a graph computation's behavior, and predict its
// performance?" — a behavior-vector predictor over a measured corpus.
//
// The model is deliberately simple and data-driven: for a queried
// <algorithm, size, alpha> tuple, it inverse-distance-interpolates the
// algorithm's measured runs in (log10 size, alpha) feature space. Because
// §4 shows behavior varies smoothly along both axes for most algorithms
// (and the vectors are per-edge normalized, removing first-order scale),
// local interpolation is a credible baseline predictor — and its
// leave-one-out error doubles as a quantitative check of the paper's
// smoothness observations.
package predict

import (
	"fmt"
	"math"

	"gcbench/internal/behavior"
)

// Predictor interpolates behavior vectors from a corpus.
type Predictor struct {
	byAlg map[string][]sample
}

type sample struct {
	logSize float64
	alpha   float64
	raw     behavior.Vector
	iters   float64
}

// Query identifies the computation whose behavior to predict.
type Query struct {
	Algorithm string
	NumEdges  int64
	Alpha     float64
}

// Prediction is the interpolated behavior.
type Prediction struct {
	// Raw is the per-edge behavior vector <UPDT, WORK, EREAD, MSG>.
	Raw behavior.Vector
	// Iterations is the predicted run length.
	Iterations float64
	// Support is the number of corpus runs that informed the prediction.
	Support int
}

// New builds a predictor from measured runs.
func New(runs []*behavior.Run) (*Predictor, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("predict: empty corpus")
	}
	p := &Predictor{byAlg: map[string][]sample{}}
	for _, r := range runs {
		if r.NumEdges <= 0 {
			continue
		}
		p.byAlg[r.Algorithm] = append(p.byAlg[r.Algorithm], sample{
			logSize: math.Log10(float64(r.NumEdges)),
			alpha:   r.Alpha,
			raw:     r.Raw,
			iters:   float64(r.Iterations),
		})
	}
	return p, nil
}

// Predict interpolates the behavior of the queried computation. It errors
// when the corpus holds no runs of the algorithm.
func (p *Predictor) Predict(q Query) (*Prediction, error) {
	samples := p.byAlg[q.Algorithm]
	if len(samples) == 0 {
		return nil, fmt.Errorf("predict: no corpus runs for algorithm %q", q.Algorithm)
	}
	if q.NumEdges <= 0 {
		return nil, fmt.Errorf("predict: query needs a positive edge count")
	}
	logSize := math.Log10(float64(q.NumEdges))

	// Inverse-squared-distance weights in (log size, alpha) space; alpha
	// spans ~1 and log size ~3-4 units, so scale alpha up to balance axes.
	const alphaScale = 3.0
	var wSum float64
	var pred Prediction
	for _, s := range samples {
		ds := logSize - s.logSize
		da := alphaScale * (q.Alpha - s.alpha)
		d2 := ds*ds + da*da
		if d2 < 1e-12 {
			// Exact hit: return the measurement itself.
			return &Prediction{Raw: s.raw, Iterations: s.iters, Support: 1}, nil
		}
		w := 1 / d2
		wSum += w
		for d := 0; d < behavior.Dims; d++ {
			pred.Raw[d] += w * s.raw[d]
		}
		pred.Iterations += w * s.iters
	}
	for d := 0; d < behavior.Dims; d++ {
		pred.Raw[d] /= wSum
	}
	pred.Iterations /= wSum
	pred.Support = len(samples)
	return &pred, nil
}

// LeaveOneOut evaluates the predictor on its own corpus: each run is
// predicted from the others and the mean relative error per behavior
// dimension is returned (dimensions where the true value is ~0 are
// skipped). Algorithms need at least 3 runs to participate.
func LeaveOneOut(runs []*behavior.Run) (behavior.Vector, error) {
	var errSum behavior.Vector
	var counts [behavior.Dims]float64
	byAlg := map[string][]*behavior.Run{}
	for _, r := range runs {
		byAlg[r.Algorithm] = append(byAlg[r.Algorithm], r)
	}
	evaluated := false
	for _, algRuns := range byAlg {
		if len(algRuns) < 3 {
			continue
		}
		for i, target := range algRuns {
			rest := make([]*behavior.Run, 0, len(algRuns)-1)
			rest = append(rest, algRuns[:i]...)
			rest = append(rest, algRuns[i+1:]...)
			p, err := New(rest)
			if err != nil {
				return behavior.Vector{}, err
			}
			pred, err := p.Predict(Query{
				Algorithm: target.Algorithm,
				NumEdges:  target.NumEdges,
				Alpha:     target.Alpha,
			})
			if err != nil {
				return behavior.Vector{}, err
			}
			evaluated = true
			for d := 0; d < behavior.Dims; d++ {
				if target.Raw[d] <= 0 {
					continue
				}
				errSum[d] += math.Abs(pred.Raw[d]-target.Raw[d]) / target.Raw[d]
				counts[d]++
			}
		}
	}
	if !evaluated {
		return behavior.Vector{}, fmt.Errorf("predict: no algorithm has enough runs for leave-one-out")
	}
	for d := 0; d < behavior.Dims; d++ {
		if counts[d] > 0 {
			errSum[d] /= counts[d]
		}
	}
	return errSum, nil
}
