// Package predict implements the paper's §7 future-work direction: "Can
// we model precisely a graph computation's behavior, and predict its
// performance?" — a behavior-vector predictor over a measured corpus.
//
// The model is deliberately simple and data-driven: for a queried
// <algorithm, size, alpha> tuple, it inverse-distance-interpolates the
// algorithm's measured runs in (log10 size, alpha) feature space. Because
// §4 shows behavior varies smoothly along both axes for most algorithms
// (and the vectors are per-edge normalized, removing first-order scale),
// local interpolation is a credible baseline predictor — and its
// leave-one-out error doubles as a quantitative check of the paper's
// smoothness observations.
//
// Queries are served through a per-algorithm nnindex k-d tree: the
// exact-hit check (is the queried configuration already measured?) is an
// O(log n) nearest-neighbor lookup instead of a linear scan, which is
// the hot path when clients re-query measured configurations. The
// linear-scan implementation is retained as PredictNaive, the oracle the
// differential tests hold Predict bit-identical to.
package predict

import (
	"fmt"
	"math"

	"gcbench/internal/behavior"
	"gcbench/internal/nnindex"
)

// Predictor interpolates behavior vectors from a corpus. Immutable after
// New; safe for concurrent queries.
type Predictor struct {
	byAlg map[string][]sample
	// feats embeds each algorithm's samples into the scaled feature
	// space (featureOf); index is the k-d tree over those points, in the
	// same order as byAlg's samples.
	feats map[string][]behavior.Vector
	index map[string]*nnindex.Index
}

type sample struct {
	logSize float64
	alpha   float64
	raw     behavior.Vector
	iters   float64
}

// alphaScale balances the feature axes: alpha spans ~1 while log size
// spans ~3-4 units.
const alphaScale = 3.0

// featureOf embeds a (log10 size, alpha) pair into the behavior-vector
// type the index is built over (the two trailing dimensions stay zero).
// All distances — hit detection and interpolation weights — are computed
// between these embedded points, so indexed and naive paths compare
// identical float64s.
func featureOf(logSize, alpha float64) behavior.Vector {
	return behavior.Vector{logSize, alphaScale * alpha}
}

// Query identifies the computation whose behavior to predict.
type Query struct {
	Algorithm string
	NumEdges  int64
	Alpha     float64
}

// Prediction is the interpolated behavior.
type Prediction struct {
	// Raw is the per-edge behavior vector <UPDT, WORK, EREAD, MSG>.
	Raw behavior.Vector
	// Iterations is the predicted run length.
	Iterations float64
	// Support is the number of corpus runs that informed the prediction.
	Support int
}

// New builds a predictor from measured runs.
func New(runs []*behavior.Run) (*Predictor, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("predict: empty corpus")
	}
	p := &Predictor{
		byAlg: map[string][]sample{},
		feats: map[string][]behavior.Vector{},
		index: map[string]*nnindex.Index{},
	}
	for _, r := range runs {
		if r.NumEdges <= 0 {
			continue
		}
		s := sample{
			logSize: math.Log10(float64(r.NumEdges)),
			alpha:   r.Alpha,
			raw:     r.Raw,
			iters:   float64(r.Iterations),
		}
		p.byAlg[r.Algorithm] = append(p.byAlg[r.Algorithm], s)
		p.feats[r.Algorithm] = append(p.feats[r.Algorithm], featureOf(s.logSize, s.alpha))
	}
	for alg, feats := range p.feats {
		p.index[alg] = nnindex.Build(feats)
	}
	return p, nil
}

// Predict interpolates the behavior of the queried computation, using
// the k-d index for the exact-hit nearest-neighbor check. It errors when
// the corpus holds no runs of the algorithm.
func (p *Predictor) Predict(q Query) (*Prediction, error) {
	return p.predict(q, true)
}

// PredictNaive is the retained linear-scan implementation — the
// differential-test oracle. Predict must return bit-identical results.
func (p *Predictor) PredictNaive(q Query) (*Prediction, error) {
	return p.predict(q, false)
}

func (p *Predictor) predict(q Query, indexed bool) (*Prediction, error) {
	samples := p.byAlg[q.Algorithm]
	if len(samples) == 0 {
		return nil, fmt.Errorf("predict: no corpus runs for algorithm %q", q.Algorithm)
	}
	if q.NumEdges <= 0 {
		return nil, fmt.Errorf("predict: query needs a positive edge count")
	}
	qf := featureOf(math.Log10(float64(q.NumEdges)), q.Alpha)
	feats := p.feats[q.Algorithm]

	// Exact hit: the queried configuration is (numerically) a measured
	// one — return the nearest such measurement itself. The index and
	// the scan agree exactly, ties included (nnindex's contract).
	var hit int
	var hitD2 float64
	if indexed {
		hit, hitD2 = p.index[q.Algorithm].Nearest(qf)
	} else {
		hit, hitD2 = nnindex.NearestLinear(feats, qf)
	}
	if hitD2 < 1e-12 {
		s := samples[hit]
		return &Prediction{Raw: s.raw, Iterations: s.iters, Support: 1}, nil
	}

	// Inverse-squared-distance interpolation over all runs. The nearest
	// distance is ≥ 1e-12 here, so no weight divides by zero.
	var wSum float64
	var pred Prediction
	for i, s := range samples {
		w := 1 / nnindex.Dist2(qf, feats[i])
		wSum += w
		for d := 0; d < behavior.Dims; d++ {
			pred.Raw[d] += w * s.raw[d]
		}
		pred.Iterations += w * s.iters
	}
	for d := 0; d < behavior.Dims; d++ {
		pred.Raw[d] /= wSum
	}
	pred.Iterations /= wSum
	pred.Support = len(samples)
	return &pred, nil
}

// LeaveOneOut evaluates the predictor on its own corpus: each run is
// predicted from the others and the mean relative error per behavior
// dimension is returned (dimensions where the true value is ~0 are
// skipped). Algorithms need at least 3 runs to participate.
func LeaveOneOut(runs []*behavior.Run) (behavior.Vector, error) {
	var errSum behavior.Vector
	var counts [behavior.Dims]float64
	byAlg := map[string][]*behavior.Run{}
	for _, r := range runs {
		byAlg[r.Algorithm] = append(byAlg[r.Algorithm], r)
	}
	evaluated := false
	for _, algRuns := range byAlg {
		if len(algRuns) < 3 {
			continue
		}
		for i, target := range algRuns {
			rest := make([]*behavior.Run, 0, len(algRuns)-1)
			rest = append(rest, algRuns[:i]...)
			rest = append(rest, algRuns[i+1:]...)
			p, err := New(rest)
			if err != nil {
				return behavior.Vector{}, err
			}
			pred, err := p.Predict(Query{
				Algorithm: target.Algorithm,
				NumEdges:  target.NumEdges,
				Alpha:     target.Alpha,
			})
			if err != nil {
				return behavior.Vector{}, err
			}
			evaluated = true
			for d := 0; d < behavior.Dims; d++ {
				if target.Raw[d] <= 0 {
					continue
				}
				errSum[d] += math.Abs(pred.Raw[d]-target.Raw[d]) / target.Raw[d]
				counts[d]++
			}
		}
	}
	if !evaluated {
		return behavior.Vector{}, fmt.Errorf("predict: no algorithm has enough runs for leave-one-out")
	}
	for d := 0; d < behavior.Dims; d++ {
		if counts[d] > 0 {
			errSum[d] /= counts[d]
		}
	}
	return errSum, nil
}
