package predict

import (
	"math"
	"testing"

	"gcbench/internal/behavior"
)

// syntheticCorpus builds runs whose behavior is a smooth function of
// (log size, alpha): Raw[d] = base[d] · (1 + 0.1·logSize + 0.2·alpha).
func syntheticCorpus() []*behavior.Run {
	var runs []*behavior.Run
	base := behavior.Vector{0.5, 0.01, 1.0, 0.7}
	for _, size := range []int64{1000, 10000, 100000, 1000000} {
		for _, alpha := range []float64{2.0, 2.25, 2.5, 2.75, 3.0} {
			factor := 1 + 0.1*math.Log10(float64(size)) + 0.2*alpha
			var raw behavior.Vector
			for d := range raw {
				raw[d] = base[d] * factor
			}
			runs = append(runs, &behavior.Run{
				Algorithm: "PR", Domain: "Graph Analytics",
				NumEdges: size, Alpha: alpha, SizeLabel: "x",
				Iterations: int(10 * factor), Raw: raw,
			})
		}
	}
	return runs
}

func TestPredictExactHit(t *testing.T) {
	runs := syntheticCorpus()
	p, err := New(runs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict(Query{Algorithm: "PR", NumEdges: 10000, Alpha: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	want := findRun(runs, 10000, 2.5)
	for d := 0; d < behavior.Dims; d++ {
		if got.Raw[d] != want.Raw[d] {
			t.Fatalf("exact-hit prediction differs: %v vs %v", got.Raw, want.Raw)
		}
	}
	if got.Support != 1 {
		t.Fatalf("exact hit support = %d", got.Support)
	}
}

func findRun(runs []*behavior.Run, size int64, alpha float64) *behavior.Run {
	for _, r := range runs {
		if r.NumEdges == size && r.Alpha == alpha {
			return r
		}
	}
	return nil
}

func TestPredictInterpolates(t *testing.T) {
	runs := syntheticCorpus()
	p, err := New(runs)
	if err != nil {
		t.Fatal(err)
	}
	// Query between grid points: 10^4.5 edges, alpha 2.4.
	got, err := p.Predict(Query{Algorithm: "PR", NumEdges: 31623, Alpha: 2.4})
	if err != nil {
		t.Fatal(err)
	}
	wantFactor := 1 + 0.1*math.Log10(31623) + 0.2*2.4
	base := behavior.Vector{0.5, 0.01, 1.0, 0.7}
	for d := 0; d < behavior.Dims; d++ {
		want := base[d] * wantFactor
		if math.Abs(got.Raw[d]-want)/want > 0.05 {
			t.Fatalf("dim %d: predicted %v, want ≈%v", d, got.Raw[d], want)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty corpus accepted")
	}
	p, err := New(syntheticCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(Query{Algorithm: "CC", NumEdges: 1000}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := p.Predict(Query{Algorithm: "PR", NumEdges: 0}); err == nil {
		t.Fatal("zero edges accepted")
	}
}

func TestLeaveOneOutSmoothCorpus(t *testing.T) {
	errs, err := LeaveOneOut(syntheticCorpus())
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < behavior.Dims; d++ {
		if errs[d] > 0.10 {
			t.Fatalf("dim %s LOO error %v, want < 10%% on a smooth corpus",
				behavior.DimNames[d], errs[d])
		}
	}
}

func TestLeaveOneOutNeedsEnoughRuns(t *testing.T) {
	runs := syntheticCorpus()[:2]
	if _, err := LeaveOneOut(runs); err == nil {
		t.Fatal("tiny corpus accepted")
	}
}
