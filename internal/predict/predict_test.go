package predict

import (
	"fmt"
	"math"
	"testing"

	"gcbench/internal/behavior"
	"gcbench/internal/rng"
)

// syntheticCorpus builds runs whose behavior is a smooth function of
// (log size, alpha): Raw[d] = base[d] · (1 + 0.1·logSize + 0.2·alpha).
func syntheticCorpus() []*behavior.Run {
	var runs []*behavior.Run
	base := behavior.Vector{0.5, 0.01, 1.0, 0.7}
	for _, size := range []int64{1000, 10000, 100000, 1000000} {
		for _, alpha := range []float64{2.0, 2.25, 2.5, 2.75, 3.0} {
			factor := 1 + 0.1*math.Log10(float64(size)) + 0.2*alpha
			var raw behavior.Vector
			for d := range raw {
				raw[d] = base[d] * factor
			}
			runs = append(runs, &behavior.Run{
				Algorithm: "PR", Domain: "Graph Analytics",
				NumEdges: size, Alpha: alpha, SizeLabel: "x",
				Iterations: int(10 * factor), Raw: raw,
			})
		}
	}
	return runs
}

func TestPredictExactHit(t *testing.T) {
	runs := syntheticCorpus()
	p, err := New(runs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict(Query{Algorithm: "PR", NumEdges: 10000, Alpha: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	want := findRun(runs, 10000, 2.5)
	for d := 0; d < behavior.Dims; d++ {
		if got.Raw[d] != want.Raw[d] {
			t.Fatalf("exact-hit prediction differs: %v vs %v", got.Raw, want.Raw)
		}
	}
	if got.Support != 1 {
		t.Fatalf("exact hit support = %d", got.Support)
	}
}

func findRun(runs []*behavior.Run, size int64, alpha float64) *behavior.Run {
	for _, r := range runs {
		if r.NumEdges == size && r.Alpha == alpha {
			return r
		}
	}
	return nil
}

func TestPredictInterpolates(t *testing.T) {
	runs := syntheticCorpus()
	p, err := New(runs)
	if err != nil {
		t.Fatal(err)
	}
	// Query between grid points: 10^4.5 edges, alpha 2.4.
	got, err := p.Predict(Query{Algorithm: "PR", NumEdges: 31623, Alpha: 2.4})
	if err != nil {
		t.Fatal(err)
	}
	wantFactor := 1 + 0.1*math.Log10(31623) + 0.2*2.4
	base := behavior.Vector{0.5, 0.01, 1.0, 0.7}
	for d := 0; d < behavior.Dims; d++ {
		want := base[d] * wantFactor
		if math.Abs(got.Raw[d]-want)/want > 0.05 {
			t.Fatalf("dim %d: predicted %v, want ≈%v", d, got.Raw[d], want)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty corpus accepted")
	}
	p, err := New(syntheticCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(Query{Algorithm: "CC", NumEdges: 1000}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := p.Predict(Query{Algorithm: "PR", NumEdges: 0}); err == nil {
		t.Fatal("zero edges accepted")
	}
}

func TestLeaveOneOutSmoothCorpus(t *testing.T) {
	errs, err := LeaveOneOut(syntheticCorpus())
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < behavior.Dims; d++ {
		if errs[d] > 0.10 {
			t.Fatalf("dim %s LOO error %v, want < 10%% on a smooth corpus",
				behavior.DimNames[d], errs[d])
		}
	}
}

func TestLeaveOneOutNeedsEnoughRuns(t *testing.T) {
	runs := syntheticCorpus()[:2]
	if _, err := LeaveOneOut(runs); err == nil {
		t.Fatal("tiny corpus accepted")
	}
}

// randomCorpus builds a corpus of n runs per algorithm with randomized
// sizes and alphas, including deliberate duplicate configurations so hit
// detection exercises ties.
func randomCorpus(n int, seed uint64) []*behavior.Run {
	r := rng.New(seed)
	var runs []*behavior.Run
	for _, alg := range []string{"PR", "KM", "TC"} {
		for i := 0; i < n; i++ {
			size := int64(1000 + r.Intn(10_000_000))
			alpha := 2 + r.Float64()
			if i > 0 && r.Intn(5) == 0 {
				// Duplicate an earlier configuration (different raw).
				prev := runs[len(runs)-1-r.Intn(i)]
				size, alpha = prev.NumEdges, prev.Alpha
			}
			var raw behavior.Vector
			for d := range raw {
				raw[d] = r.Float64()
			}
			runs = append(runs, &behavior.Run{
				Algorithm: alg, Domain: "Graph Analytics",
				NumEdges: size, Alpha: alpha, SizeLabel: "x",
				Iterations: 1 + r.Intn(50), Raw: raw,
			})
		}
	}
	return runs
}

// TestPredictMatchesNaive is the differential test: the indexed Predict
// and the retained linear-scan PredictNaive return bit-identical
// predictions for measured configurations (exact hits, including
// duplicates), perturbed near-hits, and interpolation queries.
func TestPredictMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		runs := randomCorpus(100, seed)
		p, err := New(runs)
		if err != nil {
			t.Fatal(err)
		}
		var queries []Query
		for _, r := range runs {
			queries = append(queries,
				Query{r.Algorithm, r.NumEdges, r.Alpha},          // exact hit
				Query{r.Algorithm, r.NumEdges + 1, r.Alpha},      // near hit
				Query{r.Algorithm, r.NumEdges * 3, r.Alpha + .1}, // interpolation
			)
		}
		qr := rng.New(seed ^ 0x9e3779b9)
		for i := 0; i < 300; i++ {
			queries = append(queries, Query{
				Algorithm: []string{"PR", "KM", "TC"}[qr.Intn(3)],
				NumEdges:  int64(1000 + qr.Intn(10_000_000)),
				Alpha:     2 + qr.Float64(),
			})
		}
		for qi, q := range queries {
			want, errN := p.PredictNaive(q)
			got, errI := p.Predict(q)
			if (errN == nil) != (errI == nil) {
				t.Fatalf("query %d: error mismatch: %v vs %v", qi, errI, errN)
			}
			if errN != nil {
				continue
			}
			if got.Raw != want.Raw || got.Iterations != want.Iterations || got.Support != want.Support {
				t.Fatalf("query %d (%+v): indexed %+v, naive %+v", qi, q, got, want)
			}
		}
	}
}

// TestPredictExactHitDuplicates: when several runs share a measured
// configuration, both paths return the first (smallest-index) one.
func TestPredictExactHitDuplicates(t *testing.T) {
	runs := syntheticCorpus()
	dup := *runs[7]
	dup.Raw[0] *= 2 // distinguishable payload, identical configuration
	runs = append(runs, &dup)
	p, err := New(runs)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{runs[7].Algorithm, runs[7].NumEdges, runs[7].Alpha}
	want, err := p.PredictNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Raw != want.Raw {
		t.Fatalf("duplicate hit: indexed %v, naive %v", got.Raw, want.Raw)
	}
	if got.Raw != runs[7].Raw {
		t.Fatalf("duplicate hit resolved to the later run: %v", got.Raw)
	}
}

// benchCorpus spreads many runs over one algorithm so the NN structures
// have depth to search.
func benchCorpus(n int) []*behavior.Run {
	r := rng.New(424242)
	runs := make([]*behavior.Run, n)
	for i := range runs {
		var raw behavior.Vector
		for d := range raw {
			raw[d] = r.Float64()
		}
		runs[i] = &behavior.Run{
			Algorithm: "PR", Domain: "Graph Analytics",
			NumEdges: int64(1000 + r.Intn(100_000_000)), Alpha: 2 + r.Float64(),
			SizeLabel: "x", Iterations: 10, Raw: raw,
		}
	}
	return runs
}

// BenchmarkPredictIndexed vs BenchmarkPredictLinear: the exact-hit path
// (re-querying measured configurations — the serving hot path) via the
// k-d index against the retained linear scan.
func BenchmarkPredictIndexed(b *testing.B) {
	benchmarkPredict(b, func(p *Predictor, q Query) (*Prediction, error) { return p.Predict(q) })
}

func BenchmarkPredictLinear(b *testing.B) {
	benchmarkPredict(b, func(p *Predictor, q Query) (*Prediction, error) { return p.PredictNaive(q) })
}

func benchmarkPredict(b *testing.B, fn func(*Predictor, Query) (*Prediction, error)) {
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runs := benchCorpus(n)
			p, err := New(runs)
			if err != nil {
				b.Fatal(err)
			}
			queries := make([]Query, len(runs))
			for i, r := range runs {
				queries[i] = Query{r.Algorithm, r.NumEdges, r.Alpha}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fn(p, queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
