package engine

import (
	"math/bits"
	"sync/atomic"
)

// bitset is a fixed-size bitmap over vertex IDs with an atomic Set for the
// concurrent scatter phase.
type bitset struct {
	words []uint64
	n     int
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Set marks bit i. Safe for concurrent use.
func (b *bitset) Set(i uint32) {
	w := &b.words[i>>6]
	mask := uint64(1) << (i & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// SetSerial marks bit i without synchronization (single-goroutine phases).
func (b *bitset) SetSerial(i uint32) {
	b.words[i>>6] |= uint64(1) << (i & 63)
}

// Get reports whether bit i is set. Not synchronized with concurrent Set.
func (b *bitset) Get(i uint32) bool {
	return b.words[i>>6]&(uint64(1)<<(i&63)) != 0
}

// Clear zeroes the whole set.
func (b *bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// SetAll marks every bit in [0, n).
func (b *bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	// Mask the tail beyond n.
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (uint64(1) << rem) - 1
	}
}

// Count returns the number of set bits.
func (b *bitset) Count() int64 {
	var c int64
	for _, w := range b.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// Range calls fn for every set bit in the half-open vertex range [lo, hi).
// lo and hi must be multiples of 64 or the ends of the set.
func (b *bitset) Range(lo, hi uint32, fn func(v uint32)) {
	wLo, wHi := int(lo>>6), int((hi+63)>>6)
	if wHi > len(b.words) {
		wHi = len(b.words)
	}
	for wi := wLo; wi < wHi; wi++ {
		w := b.words[wi]
		base := uint32(wi) << 6
		for w != 0 {
			bit := uint32(bits.TrailingZeros64(w))
			v := base + bit
			if v >= hi {
				return
			}
			if v >= lo {
				fn(v)
			}
			w &= w - 1
		}
	}
}
