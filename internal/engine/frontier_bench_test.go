package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

// chainsGraph is the low-active extreme: a source fanning out to k
// independent chains of length l. BFS keeps exactly k vertices active
// per wave — k/(k·l) of the graph — for l iterations, the regime where
// a dense O(V) scan per phase dwarfs the real work.
func chainsGraph(tb testing.TB, k, l int) *graph.Graph {
	tb.Helper()
	n := 1 + k*l
	b := graph.NewBuilder(n, true)
	for c := 0; c < k; c++ {
		first := uint32(1 + c*l)
		b.AddEdge(0, first)
		for i := 0; i < l-1; i++ {
			b.AddEdge(first+uint32(i), first+uint32(i)+1)
		}
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

var frontierBenchModes = []FrontierMode{FrontierDense, FrontierSparse, FrontierAuto}

// BenchmarkFrontierLowActive: BFS over chains — ~0.1% active per
// iteration for ~1000 iterations. Sparse should win by the dense-scan
// overhead factor; Auto should track sparse.
func BenchmarkFrontierLowActive(b *testing.B) {
	g := chainsGraph(b, 64, 4096)
	for _, mode := range frontierBenchModes {
		b.Run("mode="+mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{
					Workers:  runtime.GOMAXPROCS(0),
					Frontier: mode,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrontierHighActive: all-active PageRank-like iterations on a
// power-law graph — the dense regime. Sparse must not fall off a cliff
// here, and Auto should track dense.
func BenchmarkFrontierHighActive(b *testing.B) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 200_000, Alpha: 2.1, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range frontierBenchModes {
		b.Run("mode="+mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run[float64, float64](g, rankLike{}, Options{
					Workers:       runtime.GOMAXPROCS(0),
					MaxIterations: 5,
					Frontier:      mode,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// engineBenchArtifact is the BENCH_engine.json schema consumed by the CI
// bench job as a regression baseline.
type engineBenchArtifact struct {
	Workers    int                   `json:"workers"`
	Benchmarks []frontierBenchResult `json:"benchmarks"`
}

type frontierBenchResult struct {
	Name           string  `json:"name"`
	Mode           string  `json:"mode"`
	RunSeconds     float64 `json:"runSeconds"`
	SpeedupVsDense float64 `json:"speedupVsDense"`
}

// TestWriteEngineBenchArtifact measures the frontier microbenchmarks and
// writes BENCH_engine.json when GCBENCH_BENCH_ARTIFACT names the output
// path. It also enforces the tentpole's acceptance bar: sparse at least
// 3x faster than dense on the low-active workload.
func TestWriteEngineBenchArtifact(t *testing.T) {
	out := os.Getenv("GCBENCH_BENCH_ARTIFACT")
	if out == "" {
		t.Skip("set GCBENCH_BENCH_ARTIFACT=<path> to measure and write the engine bench artifact")
	}
	workers := runtime.GOMAXPROCS(0)

	lowG := chainsGraph(t, 64, 4096)
	highG, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 200_000, Alpha: 2.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	measure := func(g *graph.Graph, run func(FrontierMode) error, reps int, mode FrontierMode) float64 {
		_ = g
		// One warm-up, then best-of-reps to shed scheduler noise.
		if err := run(mode); err != nil {
			t.Fatal(err)
		}
		best := time.Duration(1<<62 - 1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if err := run(mode); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best.Seconds()
	}
	lowRun := func(m FrontierMode) error {
		_, err := Run[float64, float64](lowG, &bfsProgram{source: 0}, Options{Workers: workers, Frontier: m})
		return err
	}
	highRun := func(m FrontierMode) error {
		_, err := Run[float64, float64](highG, rankLike{}, Options{Workers: workers, MaxIterations: 5, Frontier: m})
		return err
	}

	art := engineBenchArtifact{Workers: workers}
	times := map[string]map[string]float64{"FrontierLowActive": {}, "FrontierHighActive": {}}
	for _, mode := range frontierBenchModes {
		times["FrontierLowActive"][mode.String()] = measure(lowG, lowRun, 5, mode)
		times["FrontierHighActive"][mode.String()] = measure(highG, highRun, 5, mode)
	}
	for _, name := range []string{"FrontierLowActive", "FrontierHighActive"} {
		dense := times[name]["dense"]
		for _, mode := range frontierBenchModes {
			s := times[name][mode.String()]
			art.Benchmarks = append(art.Benchmarks, frontierBenchResult{
				Name:           name,
				Mode:           mode.String(),
				RunSeconds:     s,
				SpeedupVsDense: dense / s,
			})
		}
	}

	lowSpeedup := times["FrontierLowActive"]["dense"] / times["FrontierLowActive"]["sparse"]
	t.Logf("low-active sparse speedup vs dense: %.2fx", lowSpeedup)
	t.Logf("high-active sparse slowdown vs dense: %.2fx", times["FrontierHighActive"]["sparse"]/times["FrontierHighActive"]["dense"])
	if lowSpeedup < 3 {
		t.Errorf("low-active sparse speedup %.2fx, want >= 3x", lowSpeedup)
	}

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
