package engine

import (
	"fmt"
	"testing"

	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

// Ablation: worker scaling of the three-phase synchronous engine on a
// dense-frontier workload (PageRank-like all-active iterations). Dynamic
// word-aligned chunk dealing should scale until memory bandwidth binds;
// on power-law graphs static vertex partitions would not, because hub
// chunks dominate.

// rankLike keeps every vertex active and touches every edge — the
// worst-case dense iteration.
type rankLike struct{}

func (rankLike) Init(_ *graph.Graph, _ uint32) (float64, bool) { return 1, true }
func (rankLike) GatherDirection() Direction                    { return In }
func (rankLike) Gather(_ uint32, _ Arc, _, other float64) float64 {
	return other * 0.5
}
func (rankLike) Sum(a, b float64) float64 { return a + b }
func (rankLike) Apply(_ uint32, self, acc float64, _ bool) float64 {
	return 0.15 + 0.85*acc
}
func (rankLike) ScatterDirection() Direction                { return Out }
func (rankLike) Scatter(uint32, Arc, float64, float64) bool { return true }

func BenchmarkWorkerScaling(b *testing.B) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 200_000, Alpha: 2.1, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run[float64, float64](g, rankLike{}, Options{
					Workers:       workers,
					MaxIterations: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
