package engine

import (
	"sync"
	"testing"

	"gcbench/internal/gen"
	"gcbench/internal/graph"
	"gcbench/internal/obs"
)

func TestParseFrontierMode(t *testing.T) {
	cases := map[string]FrontierMode{
		"": FrontierAuto, "auto": FrontierAuto, "AUTO": FrontierAuto,
		"dense": FrontierDense, "Sparse": FrontierSparse,
	}
	for in, want := range cases {
		got, err := ParseFrontierMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseFrontierMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFrontierMode("bogus"); err == nil {
		t.Fatal("bogus frontier mode accepted")
	}
	for m, s := range map[FrontierMode]string{FrontierAuto: "auto", FrontierDense: "dense", FrontierSparse: "sparse"} {
		if m.String() != s {
			t.Fatalf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}

// counterVector flattens the deterministic per-iteration counters of a
// trace for exact comparison across schedules.
func counterVector(t *testing.T, res *Result[float64]) []int64 {
	t.Helper()
	var out []int64
	for _, it := range res.Trace.Iterations {
		out = append(out, it.Active, it.Updates, it.EdgeReads, it.Messages)
	}
	return out
}

// TestFrontierModesIdenticalBehavior runs the same BFS under every
// frontier mode and worker count and requires bit-identical states and
// per-iteration behavior counters: execution strategy is an engine
// concern, behavior is the paper's invariant.
func TestFrontierModesIdenticalBehavior(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 8000, Alpha: 2.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{Workers: 1, Frontier: FrontierDense})
	if err != nil {
		t.Fatal(err)
	}
	want := counterVector(t, base)
	for _, mode := range []FrontierMode{FrontierDense, FrontierSparse, FrontierAuto} {
		for _, workers := range []int{1, 4, 8} {
			res, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{Workers: workers, Frontier: mode})
			if err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
			}
			for v := range base.States {
				if res.States[v] != base.States[v] {
					t.Fatalf("mode=%v workers=%d: state[%d] = %v, want %v",
						mode, workers, v, res.States[v], base.States[v])
				}
			}
			got := counterVector(t, res)
			if len(got) != len(want) {
				t.Fatalf("mode=%v workers=%d: %d counter entries, want %d", mode, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("mode=%v workers=%d: counter %d = %d, want %d", mode, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// hubGraph builds a hub-heavy graph: one vertex adjacent to every other —
// the power-law extreme where one frontier vertex owns nearly all edges
// and must not serialize an entire sparse slice behind it.
func hubGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, false)
	for v := 1; v < n; v++ {
		b.AddEdge(0, uint32(v))
	}
	// A sparse ring among the leaves so the BFS has more than one wave.
	for v := 1; v < n-1; v++ {
		b.AddEdge(uint32(v), uint32(v+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSparseFrontierHubHeavy forces the sparse schedule on a hub-heavy
// graph under full parallelism — the race-enabled regression for
// edge-balanced slice dealing (run with -race in CI).
func TestSparseFrontierHubHeavy(t *testing.T) {
	g := hubGraph(t, 20_000)
	dense, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{Workers: 1, Frontier: FrontierDense})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{Workers: 8, Frontier: FrontierSparse})
	if err != nil {
		t.Fatal(err)
	}
	for v := range dense.States {
		if sparse.States[v] != dense.States[v] {
			t.Fatalf("state[%d] = %v, want %v", v, sparse.States[v], dense.States[v])
		}
	}
	dc, sc := counterVector(t, dense), counterVector(t, sparse)
	if len(dc) != len(sc) {
		t.Fatalf("trace lengths differ: %d vs %d", len(dc), len(sc))
	}
	for i := range dc {
		if dc[i] != sc[i] {
			t.Fatalf("counter %d: sparse %d != dense %d", i, sc[i], dc[i])
		}
	}
	for _, it := range sparse.Trace.Iterations {
		if it.GatherMode != modeSparse || it.ApplyMode != modeSparse || it.ScatterMode != modeSparse {
			t.Fatalf("iteration %d: forced-sparse run recorded modes %q/%q/%q",
				it.Iteration, it.GatherMode, it.ApplyMode, it.ScatterMode)
		}
	}
}

// TestAutoModeSelection checks the adaptive heuristic end to end: a
// one-vertex frontier on a large graph schedules sparse, an all-active
// frontier schedules dense, and the trace records the decisions.
func TestAutoModeSelection(t *testing.T) {
	g := pathGraph(t, 20_000)
	res, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{Workers: 4, Frontier: FrontierAuto})
	if err != nil {
		t.Fatal(err)
	}
	// BFS on a path keeps at most 2 vertices active: every iteration is
	// deep in the sparse regime.
	for _, it := range res.Trace.Iterations {
		if it.GatherMode != modeSparse {
			t.Fatalf("iteration %d (active=%d): gather ran %q, want sparse", it.Iteration, it.Active, it.GatherMode)
		}
	}

	pl, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 20_000, Alpha: 2.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Run[float64, float64](pl, rankLike{}, Options{Workers: 4, MaxIterations: 3, Frontier: FrontierAuto})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range dense.Trace.Iterations {
		if it.GatherMode != modeDense || it.ApplyMode != modeDense || it.ScatterMode != modeDense {
			t.Fatalf("all-active iteration %d recorded modes %q/%q/%q, want dense",
				it.Iteration, it.GatherMode, it.ApplyMode, it.ScatterMode)
		}
	}
}

// TestHubPhaseStaysDenseUnderAuto: a tiny frontier holding a hub that
// reaches most arcs keeps its edge phases dense (the degree-prefix
// estimate), while the edge-free apply phase goes sparse.
func TestHubPhaseStaysDenseUnderAuto(t *testing.T) {
	g := hubGraph(t, 50_000)
	res, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{Workers: 4, Frontier: FrontierAuto})
	if err != nil {
		t.Fatal(err)
	}
	it0 := res.Trace.Iterations[0]
	if it0.Active != 1 {
		t.Fatalf("iteration 0 active = %d, want 1 (the hub)", it0.Active)
	}
	// The hub alone reaches ~all arcs: scatter must run dense despite the
	// singleton frontier; apply has no edges and must run sparse.
	if it0.ScatterMode != modeDense {
		t.Fatalf("hub scatter ran %q, want dense (edge estimate)", it0.ScatterMode)
	}
	if it0.ApplyMode != modeSparse {
		t.Fatalf("hub apply ran %q, want sparse", it0.ApplyMode)
	}
}

// TestParallelChunksCapsSpawn: a graph with fewer chunks than workers
// must not hand work to more worker IDs than there are chunks (the
// goroutine-per-phase startup fix), while per-worker arrays stay sized
// at Options.Workers.
func TestParallelChunksCapsSpawn(t *testing.T) {
	g := pathGraph(t, 2*chunkSize) // exactly 2 chunks
	e := &engine[int, int]{g: g, workers: 8}
	var mu sync.Mutex
	seen := map[int]bool{}
	e.parallelChunks(func(worker int, lo, hi uint32) {
		mu.Lock()
		seen[worker] = true
		mu.Unlock()
	})
	if len(seen) > 2 {
		t.Fatalf("2-chunk graph used %d workers, want <= 2", len(seen))
	}
	for w := range seen {
		if w < 0 || w >= 8 {
			t.Fatalf("worker id %d out of range", w)
		}
	}

	// Span arrays keep full Workers length regardless of spawn count.
	res, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{Workers: 8, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Trace.Iterations {
		if len(it.WorkerSpans) != 8 {
			t.Fatalf("iteration %d: %d worker spans, want 8", it.Iteration, len(it.WorkerSpans))
		}
	}
}

func TestBitsetCountRange(t *testing.T) {
	b := newBitset(300)
	for _, i := range []uint32{0, 63, 64, 127, 128, 255, 299} {
		b.SetSerial(i)
	}
	cases := []struct {
		lo, hi uint32
		want   int64
	}{
		{0, 300, 7}, {0, 64, 2}, {64, 128, 2}, {128, 300, 3}, {192, 256, 1}, {256, 300, 1},
	}
	for _, c := range cases {
		if got := b.CountRange(c.lo, c.hi); got != c.want {
			t.Fatalf("CountRange(%d, %d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
	if got, want := b.CountRange(0, 300), b.Count(); got != want {
		t.Fatalf("full CountRange %d != Count %d", got, want)
	}
}

// TestFrontierMetricsAdvance: a sparse run feeds the obs registry's
// frontier counters.
func TestFrontierMetricsAdvance(t *testing.T) {
	before := obs.Default().Snapshot()
	g := pathGraph(t, 20_000)
	if _, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{Workers: 2, Frontier: FrontierAuto}); err != nil {
		t.Fatal(err)
	}
	after := obs.Default().Snapshot()
	if d := after["gcbench_engine_frontier_mode_total"] - before["gcbench_engine_frontier_mode_total"]; d <= 0 {
		t.Fatalf("frontier mode decisions advanced by %v, want > 0", d)
	}
	if d := after["gcbench_engine_frontier_sparse_phases_total"] - before["gcbench_engine_frontier_sparse_phases_total"]; d <= 0 {
		t.Fatalf("sparse phase counter advanced by %v, want > 0", d)
	}
}

// TestFrontierSwitchCounted: a run whose frontier collapses from
// all-active to a trickle flips dense→sparse exactly once under Auto.
func TestFrontierSwitchCounted(t *testing.T) {
	before := obs.Default().Snapshot()
	// CC-like start (everyone active) that quiesces down a path: use BFS
	// from all sources via alwaysOn? Simpler: run dense-heavy rankLike for
	// 2 iterations, then a path BFS — the switch metric is process-wide,
	// so assert it advances across a run that mixes regimes.
	g := pathGraph(t, 20_000)
	p := &denseThenSparse{}
	if _, err := Run[float64, float64](g, p, Options{Workers: 2, Frontier: FrontierAuto}); err != nil {
		t.Fatal(err)
	}
	after := obs.Default().Snapshot()
	if d := after["gcbench_engine_frontier_switches_total"] - before["gcbench_engine_frontier_switches_total"]; d < 1 {
		t.Fatalf("switch counter advanced by %v, want >= 1", d)
	}
}

// denseThenSparse keeps everyone active for the first iterations, then
// collapses to a single vertex — forcing a dense→sparse transition.
type denseThenSparse struct{}

func (denseThenSparse) Init(_ *graph.Graph, _ uint32) (float64, bool) { return 0, true }
func (denseThenSparse) GatherDirection() Direction                    { return None }
func (denseThenSparse) Gather(uint32, Arc, float64, float64) float64  { return 0 }
func (denseThenSparse) Sum(a, b float64) float64                      { return a + b }
func (denseThenSparse) Apply(_ uint32, self, _ float64, _ bool) float64 {
	return self + 1
}
func (denseThenSparse) ScatterDirection() Direction { return None }
func (denseThenSparse) Scatter(uint32, Arc, float64, float64) bool {
	return false
}
func (denseThenSparse) PostIteration(c *Control[float64]) bool {
	switch c.Iteration() {
	case 0, 1:
		c.ActivateAll()
		return false
	case 2, 3:
		c.Activate(7)
		return false
	}
	return true
}
