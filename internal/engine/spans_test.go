package engine

import (
	"testing"

	"gcbench/internal/gen"
	"gcbench/internal/obs"
)

// TestPhaseSpansConsistent verifies the span algebra on every iteration:
// the three phase walls plus the barrier residual reconstruct the
// iteration wall exactly (BarrierTime is defined as the remainder), the
// per-worker apply attribution sums to the WORK numerator, and nothing
// is negative.
func TestPhaseSpansConsistent(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 20_000, Alpha: 2.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[float64, float64](g, rankLike{}, Options{Workers: 4, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Iterations) == 0 {
		t.Fatal("no iterations")
	}
	for _, it := range res.Trace.Iterations {
		if it.GatherWall < 0 || it.ApplyWall < 0 || it.ScatterWall < 0 || it.BarrierTime < 0 {
			t.Fatalf("iteration %d: negative span: %+v", it.Iteration, it)
		}
		if sum := it.GatherWall + it.ApplyWall + it.ScatterWall + it.BarrierTime; sum != it.WallTime {
			t.Fatalf("iteration %d: spans sum to %v, wall %v", it.Iteration, sum, it.WallTime)
		}
		if len(it.WorkerSpans) == 0 {
			t.Fatalf("iteration %d: no worker spans", it.Iteration)
		}
		var applyBusy, gatherBusy int64
		for _, ws := range it.WorkerSpans {
			if ws.Gather < 0 || ws.Apply < 0 || ws.Scatter < 0 {
				t.Fatalf("iteration %d worker %d: negative busy time", it.Iteration, ws.Worker)
			}
			applyBusy += int64(ws.Apply)
			gatherBusy += int64(ws.Gather)
		}
		if applyBusy != int64(it.ApplyTime) {
			t.Fatalf("iteration %d: worker apply busy %d != ApplyTime %d (WORK attribution broken)",
				it.Iteration, applyBusy, int64(it.ApplyTime))
		}
		// A dense-frontier gather does real work; its attribution must
		// not be empty.
		if it.EdgeReads > 0 && gatherBusy == 0 {
			t.Fatalf("iteration %d: %d edge reads but zero gather busy time", it.Iteration, it.EdgeReads)
		}
	}
}

// TestEngineMetricsPopulated verifies the engine feeds the process-wide
// obs registry: counters advance by at least this run's own totals
// (other tests may run concurrently, so exact deltas are not asserted).
func TestEngineMetricsPopulated(t *testing.T) {
	reg := obs.Default()
	before := reg.Snapshot()
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 5_000, Alpha: 2.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[float64, float64](g, rankLike{}, Options{Workers: 2, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot()
	iters := float64(res.Trace.NumIterations())
	if d := after["gcbench_engine_iterations_total"] - before["gcbench_engine_iterations_total"]; d < iters {
		t.Fatalf("iterations counter advanced by %v, want >= %v", d, iters)
	}
	var updates float64
	for _, it := range res.Trace.Iterations {
		updates += float64(it.Updates)
	}
	if d := after["gcbench_engine_updates_total"] - before["gcbench_engine_updates_total"]; d < updates {
		t.Fatalf("updates counter advanced by %v, want >= %v", d, updates)
	}
	if d := after["gcbench_engine_runs_total"] - before["gcbench_engine_runs_total"]; d < 1 {
		t.Fatalf("runs counter advanced by %v, want >= 1", d)
	}
}
