package engine

import (
	"math"
	"testing"

	"gcbench/internal/gen"
	"gcbench/internal/graph"
)

// bfsProgram computes unweighted hop distance from a source — the minimal
// frontier-expanding GAS program used to exercise engine semantics.
type bfsProgram struct {
	source uint32
}

func (p *bfsProgram) Init(_ *graph.Graph, v uint32) (float64, bool) {
	if v == p.source {
		return 0, true
	}
	return math.Inf(1), false
}
func (p *bfsProgram) GatherDirection() Direction { return In }
func (p *bfsProgram) Gather(_ uint32, _ Arc, _, other float64) float64 {
	return other + 1
}
func (p *bfsProgram) Sum(a, b float64) float64 { return math.Min(a, b) }
func (p *bfsProgram) Apply(_ uint32, self, acc float64, hasAcc bool) float64 {
	if hasAcc && acc < self {
		return acc
	}
	return self
}
func (p *bfsProgram) ScatterDirection() Direction { return Out }
func (p *bfsProgram) Scatter(v uint32, e Arc, self, other float64) bool {
	return self+1 < other
}

// serialBFS is the reference implementation.
func serialBFS(g *graph.Graph, src uint32) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	queue := []uint32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.OutNeighbors(u) {
			if dist[u]+1 < dist[v] {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(uint32(i), uint32(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSOnPath(t *testing.T) {
	g := pathGraph(t, 10)
	res, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.Converged {
		t.Fatal("BFS did not converge")
	}
	for v := 0; v < 10; v++ {
		if res.States[v] != float64(v) {
			t.Fatalf("dist[%d] = %v, want %d", v, res.States[v], v)
		}
	}
	// Path of 10 vertices: 9 propagation iterations + 1 final quiescent pass.
	if n := res.Trace.NumIterations(); n != 10 {
		t.Fatalf("iterations = %d, want 10", n)
	}
}

func TestBFSMatchesSerialOnPowerLaw(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 3000, Alpha: 2.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := serialBFS(g, 0)
	res, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.States[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, res.States[v], want[v])
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 5000, Alpha: 2.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var baseline []float64
	var baseTrace []int64
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := Run[float64, float64](g, &bfsProgram{source: 1}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = res.States
			for _, it := range res.Trace.Iterations {
				baseTrace = append(baseTrace, it.Active, it.Updates, it.EdgeReads, it.Messages)
			}
			continue
		}
		for v := range baseline {
			if res.States[v] != baseline[v] {
				t.Fatalf("workers=%d: dist[%d] = %v, want %v", workers, v, res.States[v], baseline[v])
			}
		}
		var got []int64
		for _, it := range res.Trace.Iterations {
			got = append(got, it.Active, it.Updates, it.EdgeReads, it.Messages)
		}
		if len(got) != len(baseTrace) {
			t.Fatalf("workers=%d: trace length differs", workers)
		}
		for i := range got {
			if got[i] != baseTrace[i] {
				t.Fatalf("workers=%d: trace counter %d = %d, want %d", workers, i, got[i], baseTrace[i])
			}
		}
	}
}

func TestCounterSemantics(t *testing.T) {
	// Triangle 0-1-2: start with only vertex 0 active.
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	its := res.Trace.Iterations
	// Iteration 0: 1 active vertex (0), gathers its 2 edges, 1 update,
	// signals both neighbors (2 messages).
	if its[0].Active != 1 || its[0].Updates != 1 || its[0].EdgeReads != 2 || its[0].Messages != 2 {
		t.Fatalf("iteration 0 counters = %+v", its[0])
	}
	// Iteration 1: vertices 1 and 2 active; each gathers 2 edges; no
	// further improvement possible, so no messages.
	if its[1].Active != 2 || its[1].Updates != 2 || its[1].EdgeReads != 4 || its[1].Messages != 0 {
		t.Fatalf("iteration 1 counters = %+v", its[1])
	}
	if len(its) != 2 {
		t.Fatalf("iterations = %d, want 2", len(its))
	}
	if f := res.Trace.ActiveFraction(); f[0] != 1.0/3.0 || f[1] != 2.0/3.0 {
		t.Fatalf("active fraction series = %v", f)
	}
}

func TestMaxIterationsCap(t *testing.T) {
	// A program that never quiesces: every vertex always signals.
	g := pathGraph(t, 8)
	res, err := Run[int, int](g, &alwaysOn{}, Options{MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Converged {
		t.Fatal("capped run reported convergence")
	}
	if res.Trace.NumIterations() != 5 {
		t.Fatalf("iterations = %d, want 5", res.Trace.NumIterations())
	}
}

type alwaysOn struct{}

func (alwaysOn) Init(_ *graph.Graph, _ uint32) (int, bool) { return 0, true }
func (alwaysOn) GatherDirection() Direction                { return Out }
func (alwaysOn) Gather(_ uint32, _ Arc, _, other int) int  { return other }
func (alwaysOn) Sum(a, b int) int                          { return a + b }
func (alwaysOn) Apply(_ uint32, self, _ int, _ bool) int   { return self + 1 }
func (alwaysOn) ScatterDirection() Direction               { return Out }
func (alwaysOn) Scatter(uint32, Arc, int, int) bool        { return true }

// hookProgram exercises Pre/PostIteration: no scatter signals at all, the
// post hook drives reactivation for exactly 3 iterations.
type hookProgram struct {
	preCalls, postCalls int
}

func (h *hookProgram) Init(_ *graph.Graph, _ uint32) (int, bool) { return 0, true }
func (h *hookProgram) GatherDirection() Direction                { return None }
func (h *hookProgram) Gather(_ uint32, _ Arc, _, _ int) int      { return 0 }
func (h *hookProgram) Sum(a, b int) int                          { return a + b }
func (h *hookProgram) Apply(_ uint32, self, _ int, hasAcc bool) int {
	if hasAcc {
		return -1000 // GatherDirection None must imply hasAcc == false
	}
	return self + 1
}
func (h *hookProgram) ScatterDirection() Direction        { return None }
func (h *hookProgram) Scatter(uint32, Arc, int, int) bool { return false }

func (h *hookProgram) PreIteration(c *Control[int]) { h.preCalls++ }
func (h *hookProgram) PostIteration(c *Control[int]) bool {
	h.postCalls++
	if c.Iteration() < 2 {
		c.ActivateAll()
		return false
	}
	return true
}

func TestHooksDriveReactivation(t *testing.T) {
	g := pathGraph(t, 6)
	p := &hookProgram{}
	res, err := Run[int, int](g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.Converged {
		t.Fatal("hook-halted run not marked converged")
	}
	if res.Trace.NumIterations() != 3 {
		t.Fatalf("iterations = %d, want 3", res.Trace.NumIterations())
	}
	if p.preCalls != 3 || p.postCalls != 3 {
		t.Fatalf("hook calls pre=%d post=%d, want 3 and 3", p.preCalls, p.postCalls)
	}
	for v, s := range res.States {
		if s != 3 {
			t.Fatalf("state[%d] = %d, want 3 applies", v, s)
		}
	}
	// GatherDirection None → zero edge reads; ScatterDirection None → zero
	// messages; hook activations are not messages.
	for _, it := range res.Trace.Iterations {
		if it.EdgeReads != 0 || it.Messages != 0 {
			t.Fatalf("hook-driven run counted reads/messages: %+v", it)
		}
		if it.Active != 6 || it.Updates != 6 {
			t.Fatalf("expected all 6 vertices active/updated: %+v", it)
		}
	}
}

func TestControlActivateSingle(t *testing.T) {
	g := pathGraph(t, 4)
	p := &selectiveHook{}
	res, err := Run[int, int](g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Iteration 0: all 4 active; hook activates only vertex 2 for
	// iteration 1; then halts after iteration 1.
	its := res.Trace.Iterations
	if len(its) != 2 || its[0].Active != 4 || its[1].Active != 1 {
		t.Fatalf("unexpected activity pattern: %+v", its)
	}
}

type selectiveHook struct{ hookProgram }

func (s *selectiveHook) PostIteration(c *Control[int]) bool {
	if c.Iteration() == 0 {
		c.Activate(2)
		if c.NextActiveCount() != 1 {
			panic("NextActiveCount mismatch")
		}
		return false
	}
	return true
}

func TestDirectedGatherIn(t *testing.T) {
	// Star: arcs 1→0, 2→0, 3→0. Gathering In at 0 must read 3 edges.
	b := graph.NewBuilder(4, true).Weighted()
	b.AddWeightedEdge(1, 0, 2)
	b.AddWeightedEdge(2, 0, 3)
	b.AddWeightedEdge(3, 0, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := &weightSum{}
	res, err := Run[float64, float64](g, p, Options{MaxIterations: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.States[0] != 9 {
		t.Fatalf("gathered weight sum = %v, want 9", res.States[0])
	}
	if res.Trace.Iterations[0].EdgeReads != 3 {
		t.Fatalf("edge reads = %d, want 3", res.Trace.Iterations[0].EdgeReads)
	}
}

type weightSum struct{}

func (weightSum) Init(g *graph.Graph, v uint32) (float64, bool) { return 0, v == 0 }
func (weightSum) GatherDirection() Direction                    { return In }
func (weightSum) Gather(_ uint32, e Arc, _, _ float64) float64  { return e.Weight }
func (weightSum) Sum(a, b float64) float64                      { return a + b }
func (weightSum) Apply(_ uint32, _, acc float64, has bool) float64 {
	if !has {
		return -1
	}
	return acc
}
func (weightSum) ScatterDirection() Direction                { return None }
func (weightSum) Scatter(uint32, Arc, float64, float64) bool { return false }

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := Run[int, int](nil, &alwaysOn{}, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestIsolatedVertexHasNoAcc(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Run weightSum-like gather on a graph where vertex 0 has an edge.
	// Use a 3-vertex variant with isolated vertex 2.
	b2 := graph.NewBuilder(3, false).Weighted()
	b2.AddWeightedEdge(0, 1, 5)
	g2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	p := &allActiveSum{}
	res, err := Run[float64, float64](g2, p, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.States[2] != -1 {
		t.Fatalf("isolated vertex state = %v, want -1 (hasAcc false)", res.States[2])
	}
	if res.States[0] != 5 || res.States[1] != 5 {
		t.Fatalf("edge endpoints = %v, %v, want 5, 5", res.States[0], res.States[1])
	}
}

type allActiveSum struct{ weightSum }

func (allActiveSum) Init(_ *graph.Graph, _ uint32) (float64, bool) { return 0, true }

func BenchmarkEngineBFS(b *testing.B) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{NumEdges: 100000, Alpha: 2.2, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run[float64, float64](g, &bfsProgram{source: 0}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
