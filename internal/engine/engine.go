// Package engine implements the synchronous Gather-Apply-Scatter (GAS)
// computation model of GraphLab/PowerGraph (§3.3 of the paper), with the
// instrumentation the paper's behavior characterization is built on.
//
// Graph computation is expressed vertex-centrically. Each vertex is active
// or inactive; only active vertices compute. One iteration runs three
// phases without overlap, each a barrier across all vertices:
//
//   - Gather collects data through adjacent edges (each per-edge collect is
//     an "edge read", counted toward EREAD);
//   - Apply runs user computation on the central vertex (counted toward
//     UPDT, timed toward WORK);
//   - Scatter sends activation signals to neighbors (each signal is a
//     "message", counted toward MSG). Only signaled vertices are active in
//     the next iteration.
//
// The computation ends when no vertices are active, when the program's
// optional convergence hook says so, or at the iteration cap.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gcbench/internal/graph"
	"gcbench/internal/obs"
	"gcbench/internal/trace"
)

// Engine metrics on the process-wide obs registry, updated once per
// iteration (a handful of atomic adds — far below the <5% phase-span
// overhead budget; see BenchmarkEngineBFS).
var (
	metricRuns       = obs.Default().Counter("gcbench_engine_runs_total", "Graph computations started.")
	metricIterations = obs.Default().Counter("gcbench_engine_iterations_total", "GAS iterations executed.")
	metricUpdates    = obs.Default().Counter("gcbench_engine_updates_total", "Vertex updates (apply calls, the UPDT numerator).")
	metricEdgeReads  = obs.Default().Counter("gcbench_engine_edge_reads_total", "Gather edge reads (the EREAD numerator).")
	metricMessages   = obs.Default().Counter("gcbench_engine_messages_total", "Scatter activation messages (the MSG numerator).")
	metricGatherSec  = obs.Default().Counter("gcbench_engine_gather_seconds_total", "Wall-clock seconds in gather phases.")
	metricApplySec   = obs.Default().Counter("gcbench_engine_apply_seconds_total", "Wall-clock seconds in apply phases.")
	metricScatterSec = obs.Default().Counter("gcbench_engine_scatter_seconds_total", "Wall-clock seconds in scatter phases.")
	metricBarrierSec = obs.Default().Counter("gcbench_engine_barrier_seconds_total", "Wall-clock seconds outside the three phases (hooks, frontier bookkeeping).")

	// Frontier scheduling metrics (see frontier.go).
	metricFrontierPhases = obs.Default().Counter("gcbench_engine_frontier_mode_total", "Frontier scheduling decisions made (one per phase executed; sparse share in gcbench_engine_frontier_sparse_phases_total).")
	metricFrontierSparse = obs.Default().Counter("gcbench_engine_frontier_sparse_phases_total", "Phases executed in sparse (compacted frontier) mode.")
	metricFrontierSwitch = obs.Default().Counter("gcbench_engine_frontier_switches_total", "Dense<->sparse schedule flips between consecutive iterations of a run.")
)

// Direction selects which adjacent edges a phase visits.
type Direction int

const (
	// None visits no edges.
	None Direction = iota
	// In visits in-edges (for undirected graphs, all incident edges).
	In
	// Out visits out-edges (for undirected graphs, all incident edges).
	Out
	// Both visits in- and out-edges (directed graphs only; undirected
	// graphs treat it as Out to avoid double-visiting).
	Both
)

// Arc describes one edge endpoint visit during gather or scatter.
type Arc struct {
	// Index is the canonical out-arc index of this edge in CSR order —
	// stable across gather directions, usable to index per-arc program
	// state such as belief-propagation messages.
	Index int64
	// Other is the neighbor vertex on the far side of the edge.
	Other uint32
	// Weight is the edge weight (1 for unweighted graphs).
	Weight float64
}

// Program is a vertex program in the GAS model, generic over the vertex
// state S and the gather accumulator A.
//
// Within one iteration, Gather for every active vertex runs before any
// Apply, and every Apply before any Scatter, so Gather observes the state
// of the previous iteration and Scatter observes fully applied state —
// GraphLab's synchronous semantics.
type Program[S, A any] interface {
	// Init returns vertex v's initial state and whether it starts active.
	Init(g *graph.Graph, v uint32) (state S, active bool)

	// GatherDirection selects the edges Gather visits.
	GatherDirection() Direction
	// Gather computes the contribution of one edge. self is the central
	// vertex's state, other the neighbor's.
	Gather(v uint32, e Arc, self, other S) A
	// Sum combines two gather contributions (must be commutative and
	// associative for deterministic parallel execution over a vertex's
	// sequential edge scan).
	Sum(a, b A) A

	// Apply computes v's next state. hasAcc is false when no edges were
	// gathered (isolated vertex or GatherDirection None).
	Apply(v uint32, self S, acc A, hasAcc bool) S

	// ScatterDirection selects the edges Scatter visits.
	ScatterDirection() Direction
	// Scatter inspects one edge after Apply and reports whether to signal
	// (activate) the neighbor for the next iteration.
	Scatter(v uint32, e Arc, self, other S) bool
}

// PreIterator is an optional Program extension: PreIteration runs serially
// before each iteration's gather phase (GraphLab's aggregator slot —
// K-Means recomputes centroids here).
type PreIterator[S any] interface {
	PreIteration(c *Control[S])
}

// PostIterator is an optional Program extension: PostIteration runs
// serially after the scatter phase; returning true halts the computation.
// Drivers like K-Core's k-level advance and the Lanczos loop live here.
type PostIterator[S any] interface {
	PostIteration(c *Control[S]) (halt bool)
}

// Control exposes engine state to Pre/PostIteration hooks.
type Control[S any] struct {
	eng interface {
		graphRef() *graph.Graph
		iterationRef() int
		stateAny() any
		activateNext(v uint32)
		activateAllNext()
		nextCount() int64
	}
}

// Graph returns the graph under computation.
func (c *Control[S]) Graph() *graph.Graph { return c.eng.graphRef() }

// Iteration returns the current 0-based iteration number.
func (c *Control[S]) Iteration() int { return c.eng.iterationRef() }

// States returns the live vertex state slice. Hooks may mutate it.
func (c *Control[S]) States() []S { return c.eng.stateAny().([]S) }

// Activate marks v active for the next iteration without sending a
// message (driver-level activation, not counted toward MSG).
func (c *Control[S]) Activate(v uint32) { c.eng.activateNext(v) }

// ActivateAll marks every vertex active for the next iteration.
func (c *Control[S]) ActivateAll() { c.eng.activateAllNext() }

// NextActiveCount returns how many vertices are currently marked active
// for the next iteration.
func (c *Control[S]) NextActiveCount() int64 { return c.eng.nextCount() }

// Options configures a run.
type Options struct {
	// MaxIterations caps the run; 0 means DefaultMaxIterations.
	MaxIterations int
	// Workers is the parallelism degree; 0 means GOMAXPROCS.
	Workers int
	// Context, when non-nil, is polled at every iteration barrier: a
	// cancelled or expired context stops the run before its next
	// iteration and Run returns an error wrapping ctx.Err(). Cancellation
	// is cooperative — a run is never interrupted mid-phase, so the trace
	// is always phase-consistent up to the barrier it stopped at.
	Context context.Context
	// Frontier selects the active-set scheduling strategy (see
	// frontier.go). The zero value is FrontierAuto. The paper's behavior
	// counters (UPDT, EREAD, MSG, active fraction) are identical across
	// modes by construction; only wall times and worker attribution vary.
	Frontier FrontierMode
}

// DefaultMaxIterations bounds runs whose convergence criterion never
// fires (the paper caps NMF and SGD at 20 iterations at the algorithm
// level; this engine-level cap is a safety net).
const DefaultMaxIterations = 100000

// Result carries a finished computation's trace and final states.
type Result[S any] struct {
	Trace  *trace.RunTrace
	States []S
}

// Run executes the program to convergence and returns its trace and final
// vertex states.
func Run[S, A any](g *graph.Graph, p Program[S, A], opt Options) (*Result[S], error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("engine: nil or empty graph")
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	if workers > n {
		workers = n
	}

	e := &engine[S, A]{
		g:         g,
		p:         p,
		workers:   workers,
		state:     make([]S, n),
		acc:       make([]A, n),
		hasAcc:    make([]bool, n),
		cur:       newBitset(n),
		next:      newBitset(n),
		gatherD:   normalizeDir(g, p.GatherDirection()),
		scatterD:  normalizeDir(g, p.ScatterDirection()),
		frontierM: opt.Frontier,
	}

	// Initialize states and the initial frontier.
	for v := uint32(0); int(v) < n; v++ {
		s, active := p.Init(g, v)
		e.state[v] = s
		if active {
			e.cur.SetSerial(v)
		}
	}

	pre, _ := any(p).(PreIterator[S])
	post, _ := any(p).(PostIterator[S])
	ctl := &Control[S]{eng: e}

	tr := &trace.RunTrace{
		NumVertices: n,
		NumEdges:    g.NumEdges(),
	}
	metricRuns.Inc()

	prevSparse := false
	for iter := 0; iter < maxIter; iter++ {
		active := e.countAndPlan()
		if active == 0 {
			tr.Converged = true
			break
		}
		if ctx := opt.Context; ctx != nil {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("engine: run stopped at iteration %d: %w", iter, ctx.Err())
			default:
			}
		}
		e.iter = iter
		start := time.Now()

		if iter > 0 && e.sparseIter != prevSparse {
			metricFrontierSwitch.Inc()
		}
		prevSparse = e.sparseIter

		if pre != nil {
			pre.PreIteration(ctl)
		}

		gStart := time.Now()
		edgeReads, gatherBusy, gatherMode := e.gatherPhase()
		gatherWall := time.Since(gStart)
		aStart := time.Now()
		updates, applyTime, applyBusy, applyMode := e.applyPhase()
		applyWall := time.Since(aStart)
		sStart := time.Now()
		messages, scatterBusy, scatterMode := e.scatterPhase()
		scatterWall := time.Since(sStart)

		halt := false
		if post != nil {
			halt = post.PostIteration(ctl)
		}

		wall := time.Since(start)
		spans := make([]trace.WorkerSpan, e.workers)
		for w := 0; w < e.workers; w++ {
			spans[w] = trace.WorkerSpan{Worker: w, Apply: applyBusy[w]}
			if gatherBusy != nil {
				spans[w].Gather = gatherBusy[w]
			}
			if scatterBusy != nil {
				spans[w].Scatter = scatterBusy[w]
			}
		}
		tr.Iterations = append(tr.Iterations, trace.IterationStats{
			Iteration:   iter,
			Active:      active,
			Updates:     updates,
			EdgeReads:   edgeReads,
			Messages:    messages,
			ApplyTime:   applyTime,
			WallTime:    wall,
			GatherWall:  gatherWall,
			ApplyWall:   applyWall,
			ScatterWall: scatterWall,
			BarrierTime: wall - gatherWall - applyWall - scatterWall,
			WorkerSpans: spans,
			GatherMode:  gatherMode,
			ApplyMode:   applyMode,
			ScatterMode: scatterMode,
		})

		metricIterations.Inc()
		metricUpdates.Add(float64(updates))
		metricEdgeReads.Add(float64(edgeReads))
		metricMessages.Add(float64(messages))
		metricGatherSec.Add(gatherWall.Seconds())
		metricApplySec.Add(applyWall.Seconds())
		metricScatterSec.Add(scatterWall.Seconds())
		metricBarrierSec.Add((wall - gatherWall - applyWall - scatterWall).Seconds())

		// Swap frontiers. A compacted iteration knows exactly which words
		// of the outgoing frontier were set (nothing touches cur
		// mid-iteration), so it clears those instead of the whole bitset.
		e.cur, e.next = e.next, e.cur
		if e.sparseIter {
			for _, v := range e.frontier {
				e.next.words[v>>6] = 0
			}
		} else {
			e.next.Clear()
		}

		if halt {
			tr.Converged = true
			break
		}
	}

	return &Result[S]{Trace: tr, States: e.state}, nil
}

// normalizeDir collapses In/Both to Out for undirected graphs, whose two
// CSR sides are identical.
func normalizeDir(g *graph.Graph, d Direction) Direction {
	if !g.Directed() && (d == In || d == Both) {
		return Out
	}
	return d
}

// engine holds the run's mutable state.
type engine[S, A any] struct {
	g        *graph.Graph
	p        Program[S, A]
	workers  int
	state    []S
	acc      []A
	hasAcc   []bool
	cur      *bitset
	next     *bitset
	gatherD  Direction
	scatterD Direction
	iter     int

	// Frontier scheduling state (frontier.go). The buffers are reused
	// across iterations and grow monotonically.
	frontierM  FrontierMode
	sparseIter bool     // this iteration has a compacted frontier
	frontier   []uint32 // sorted active vertices (valid when sparseIter)
	chunkOff   []int64  // per-chunk compaction offsets
	prefix     []int64  // per-phase degree prefix sums over frontier
	bounds     []int    // per-phase edge-balanced slice boundaries
}

// Control plumbing (untyped so Control[S] needs no second type parameter).
func (e *engine[S, A]) graphRef() *graph.Graph { return e.g }
func (e *engine[S, A]) iterationRef() int      { return e.iter }
func (e *engine[S, A]) stateAny() any          { return e.state }
func (e *engine[S, A]) activateNext(v uint32)  { e.next.SetSerial(v) }
func (e *engine[S, A]) activateAllNext()       { e.next.SetAll() }
func (e *engine[S, A]) nextCount() int64       { return e.next.Count() }

// chunkSize is the dynamic scheduling granule in vertices. Word-aligned
// (multiple of 64) so concurrent bitset scans never share a word.
const chunkSize = 4096

// parallelDeal deals task indices [0, numTasks) to workers through an
// atomic cursor (hub vertices in power-law graphs make static partitions
// imbalanced). It spawns min(workers, numTasks) goroutines — small graphs
// under high Workers must not pay goroutine startup for chunks that do
// not exist — and runs serially when one suffices. Worker indices passed
// to task are always < e.workers, so callers size per-worker arrays at
// e.workers regardless of how many goroutines actually spawn.
func (e *engine[S, A]) parallelDeal(numTasks int64, task func(worker int, t int64)) {
	if numTasks <= 0 {
		return
	}
	spawn := e.workers
	if int64(spawn) > numTasks {
		spawn = int(numTasks)
	}
	if spawn <= 1 {
		for t := int64(0); t < numTasks; t++ {
			task(0, t)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	// A vertex program panicking inside a worker goroutine would crash the
	// whole process; capture the first panic and re-raise it on the calling
	// goroutine so campaign-level recover() can isolate the failed run.
	type capturedPanic struct{ value any }
	var panicked atomic.Pointer[capturedPanic]
	for w := 0; w < spawn; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicked.CompareAndSwap(nil, &capturedPanic{p})
				}
			}()
			for {
				t := cursor.Add(1) - 1
				if t >= numTasks || panicked.Load() != nil {
					return
				}
				task(worker, t)
			}
		}(w)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.value)
	}
}

// parallelChunks deals word-aligned vertex chunks to workers and calls fn
// once per chunk — the dense-scan schedule.
func (e *engine[S, A]) parallelChunks(fn func(worker int, lo, hi uint32)) {
	n := uint32(e.g.NumVertices())
	numChunks := (int64(n) + chunkSize - 1) / chunkSize
	e.parallelDeal(numChunks, func(worker int, c int64) {
		lo := uint32(c * chunkSize)
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		fn(worker, lo, hi)
	})
}

// gatherPhase runs Gather+Sum per active vertex and stores accumulators.
// Returns the total edge reads, per-worker busy time (granule-level
// timing — chunk or slice — so the span instrumentation never pays a
// clock read per vertex) and the schedule mode executed.
func (e *engine[S, A]) gatherPhase() (int64, []time.Duration, string) {
	busy := make([]time.Duration, e.workers)
	if e.gatherD == None {
		// Still reset hasAcc for active vertices so Apply sees hasAcc=false.
		mode := e.forActive(None, busy, func(_ int, v uint32) { e.hasAcc[v] = false })
		return 0, busy, mode
	}
	reads := make([]int64, e.workers)
	mode := e.forActive(e.gatherD, busy, func(worker int, v uint32) {
		var acc A
		has := false
		self := e.state[v]
		r := int64(0)
		if e.gatherD == Out || e.gatherD == Both {
			lo, hi := e.g.OutArcRange(v)
			for a := lo; a < hi; a++ {
				arc := Arc{Index: a, Other: e.g.ArcTarget(a), Weight: e.g.ArcWeight(a)}
				contrib := e.p.Gather(v, arc, self, e.state[arc.Other])
				if has {
					acc = e.p.Sum(acc, contrib)
				} else {
					acc, has = contrib, true
				}
				r++
			}
		}
		if e.gatherD == In || e.gatherD == Both {
			lo, hi := e.g.InArcRange(v)
			for a := lo; a < hi; a++ {
				out := e.g.InArcToOutArc(a)
				arc := Arc{Index: out, Other: e.g.InArcSource(a), Weight: e.g.ArcWeight(out)}
				contrib := e.p.Gather(v, arc, self, e.state[arc.Other])
				if has {
					acc = e.p.Sum(acc, contrib)
				} else {
					acc, has = contrib, true
				}
				r++
			}
		}
		e.acc[v] = acc
		e.hasAcc[v] = has
		reads[worker] += r
	})
	var total int64
	for _, r := range reads {
		total += r
	}
	return total, busy, mode
}

// applyPhase runs Apply per active vertex. Each worker times its granule
// loops so WORK approximates CPU time in the user apply function without
// paying a clock read per vertex. Returns the update count, summed apply
// time (the WORK numerator — per-worker busy, not phase wall), the
// per-worker busy breakdown and the schedule mode executed.
func (e *engine[S, A]) applyPhase() (int64, time.Duration, []time.Duration, string) {
	updates := make([]int64, e.workers)
	times := make([]time.Duration, e.workers)
	mode := e.forActive(None, times, func(worker int, v uint32) {
		e.state[v] = e.p.Apply(v, e.state[v], e.acc[v], e.hasAcc[v])
		updates[worker]++
	})
	var u int64
	var d time.Duration
	for w := 0; w < e.workers; w++ {
		u += updates[w]
		d += times[w]
	}
	return u, d, times, mode
}

// scatterPhase runs Scatter per active vertex and signals neighbors.
// Returns the message count, per-worker busy time and the schedule mode.
func (e *engine[S, A]) scatterPhase() (int64, []time.Duration, string) {
	busy := make([]time.Duration, e.workers)
	if e.scatterD == None {
		// No scan runs at all; the trace records no mode for this phase.
		return 0, busy, ""
	}
	msgs := make([]int64, e.workers)
	mode := e.forActive(e.scatterD, busy, func(worker int, v uint32) {
		self := e.state[v]
		m := int64(0)
		if e.scatterD == Out || e.scatterD == Both {
			lo, hi := e.g.OutArcRange(v)
			for a := lo; a < hi; a++ {
				arc := Arc{Index: a, Other: e.g.ArcTarget(a), Weight: e.g.ArcWeight(a)}
				if e.p.Scatter(v, arc, self, e.state[arc.Other]) {
					e.next.Set(arc.Other)
					m++
				}
			}
		}
		if e.scatterD == In || e.scatterD == Both {
			lo, hi := e.g.InArcRange(v)
			for a := lo; a < hi; a++ {
				out := e.g.InArcToOutArc(a)
				arc := Arc{Index: out, Other: e.g.InArcSource(a), Weight: e.g.ArcWeight(out)}
				if e.p.Scatter(v, arc, self, e.state[arc.Other]) {
					e.next.Set(arc.Other)
					m++
				}
			}
		}
		msgs[worker] += m
	})
	var total int64
	for _, m := range msgs {
		total += m
	}
	return total, busy, mode
}
