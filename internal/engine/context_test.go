package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gcbench/internal/graph"
)

// cancelAfter wraps alwaysOn with a PostIteration hook that cancels the
// run's context after n iterations — a driver-level stand-in for an
// external campaign cancellation arriving mid-run.
type cancelAfter struct {
	alwaysOn
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfter) PostIteration(ctl *Control[int]) bool {
	if ctl.Iteration() == c.n {
		c.cancel()
	}
	return false
}

func TestRunStopsAtBarrierOnCancel(t *testing.T) {
	g := pathGraph(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Run[int, int](g, &cancelAfter{n: 3, cancel: cancel}, Options{Context: ctx, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Cancellation lands at the next barrier: iteration 4's check.
	if !strings.Contains(err.Error(), "iteration 4") {
		t.Fatalf("cancellation not reported at the barrier after the hook: %v", err)
	}
}

func TestRunAlreadyCancelledContext(t *testing.T) {
	g := pathGraph(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run[int, int](g, alwaysOn{}, Options{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	g := pathGraph(t, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// alwaysOn never converges and the cap is unreachable within the
	// deadline, so only the barrier check can end the run.
	_, err := Run[int, int](g, alwaysOn{}, Options{Context: ctx, MaxIterations: 1 << 30})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// neverActive converges immediately: no vertex starts active.
type neverActive struct{ alwaysOn }

func (neverActive) Init(_ *graph.Graph, _ uint32) (int, bool) { return 0, false }

func TestRunConvergenceCheckedBeforeContext(t *testing.T) {
	// The empty-frontier check precedes the ctx poll at each barrier, so a
	// run that has already converged reports success even under a
	// cancelled context — cancellation never invalidates finished work.
	g := pathGraph(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run[int, int](g, neverActive{}, Options{Context: ctx})
	if err != nil || !res.Trace.Converged {
		t.Fatalf("converged run failed under cancelled ctx: %v", err)
	}
}

// panicAt panics inside Apply for one vertex — exercising panic capture
// in parallel worker goroutines.
type panicAt struct{ alwaysOn }

func (panicAt) Apply(v uint32, self, _ int, _ bool) int {
	if v == 3 {
		panic("vertex program exploded")
	}
	return self + 1
}

func TestWorkerPanicPropagatesToCaller(t *testing.T) {
	g := pathGraph(t, 64)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic in a worker goroutine was swallowed")
		}
		if s, ok := p.(string); !ok || s != "vertex program exploded" {
			t.Fatalf("unexpected panic payload: %v", p)
		}
	}()
	Run[int, int](g, panicAt{}, Options{Workers: 4})
	t.Fatal("Run returned instead of panicking")
}
