// Frontier-adaptive execution: the paper's behavior metrics hinge on the
// active fraction collapsing over iterations (Figs. 3–5 — most algorithms
// spend their tail at <5% active), yet a dense scan pays O(V) bitset words
// per phase no matter how few vertices are active. This file adds the
// sparse alternative: compact the active bitset into a sorted vertex list
// once per iteration, then deal edge-balanced slices of that list to
// workers. Which strategy runs is an engine concern only — every counter
// the paper's metrics are built on (UPDT, EREAD, MSG, active fraction) is
// computed per vertex and is bit-identical across modes by construction.
package engine

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// FrontierMode selects how phases iterate the active vertex set.
type FrontierMode int

const (
	// FrontierAuto picks dense or sparse per iteration and phase from the
	// active fraction and a degree-prefix edge estimate (the default).
	FrontierAuto FrontierMode = iota
	// FrontierDense always scans the full vertex bitset in word-aligned
	// chunks (the pre-frontier behavior).
	FrontierDense
	// FrontierSparse always compacts the active set and schedules
	// edge-balanced slices of it, regardless of density.
	FrontierSparse
)

// String renders the mode as its flag spelling.
func (m FrontierMode) String() string {
	switch m {
	case FrontierDense:
		return "dense"
	case FrontierSparse:
		return "sparse"
	default:
		return "auto"
	}
}

// ParseFrontierMode resolves a case-insensitive -frontier flag value.
func ParseFrontierMode(s string) (FrontierMode, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return FrontierAuto, nil
	case "dense":
		return FrontierDense, nil
	case "sparse":
		return FrontierSparse, nil
	}
	return FrontierAuto, fmt.Errorf("engine: unknown frontier mode %q (want auto, dense or sparse)", s)
}

// Phase mode labels recorded in trace.IterationStats.
const (
	modeDense  = "dense"
	modeSparse = "sparse"
)

// sparseActiveDivisor is the Auto compaction threshold: an iteration is a
// sparse candidate when at most 1/sparseActiveDivisor of the vertices are
// active (5%, the tail regime of the paper's Figs. 3–5).
const sparseActiveDivisor = 20

// densePhaseEdgeDivisor keeps a compacted phase dense when its frontier
// still reaches more than 1/densePhaseEdgeDivisor of all arcs: with a
// hub-heavy frontier the edge work dwarfs the bitset word scan, and the
// dense scan's sequential CSR locality wins.
const densePhaseEdgeDivisor = 10

// sparseSlicesPerWorker oversubscribes sparse slices so the atomic-cursor
// deal can rebalance when one slice (a hub) runs long.
const sparseSlicesPerWorker = 4

// sparseSliceMinCost floors the cost (vertices + edges) of one sparse
// slice: a phase whose whole frontier costs less than this runs as a
// single serial slice, because goroutine fan-out would cost more than the
// work itself. The tail of a low-active run must not pay parallelism tax.
const sparseSliceMinCost = 1024

// serialCompactWords bounds the bitset size (in 64-bit words) compacted
// by a single serial pass. Below it — 2M vertices — the whole scan is a
// few microseconds and parallel fan-out only adds latency.
const serialCompactWords = 1 << 15

// countAndPlan counts the current frontier, decides the iteration's
// schedule, and compacts the frontier when the sparse path is in play.
// For small bitsets the count and the compaction are fused into a single
// word scan — in the low-active tail that scan IS the iteration's fixed
// cost, so paying it twice (popcount pass, then extraction pass) would
// halve the sparse win. The scan extracts vertex IDs optimistically and
// falls back to popcount-only the moment the count exceeds the sparse
// budget. Runs serially between the frontier swap and the gather phase.
func (e *engine[S, A]) countAndPlan() int64 {
	if e.frontierM == FrontierDense {
		e.sparseIter = false
		return e.cur.Count()
	}
	if len(e.cur.words) > serialCompactWords {
		// Large bitsets: parallel popcount, then (maybe) a parallel
		// two-pass compaction.
		active := e.cur.Count()
		e.planIteration(active)
		return active
	}
	n := int64(e.g.NumVertices())
	budget := n // FrontierSparse compacts whatever the density
	if e.frontierM == FrontierAuto {
		budget = n / sparseActiveDivisor
	}
	if int64(cap(e.frontier)) < budget {
		e.frontier = make([]uint32, budget)
	}
	f := e.frontier[:cap(e.frontier)]
	i := int64(0)
	words := e.cur.words
	for wi := 0; wi < len(words); {
		// In the low-active tail nearly every word is zero; skipping them
		// four at a time halves the scan — the iteration's fixed cost.
		if wi+4 <= len(words) && words[wi]|words[wi+1]|words[wi+2]|words[wi+3] == 0 {
			wi += 4
			continue
		}
		w := words[wi]
		if w != 0 {
			c := int64(bits.OnesCount64(w))
			if i+c > budget {
				// Too dense for sparse scheduling: finish counting without
				// materializing the rest.
				total := i + c
				for _, w2 := range words[wi+1:] {
					total += int64(bits.OnesCount64(w2))
				}
				e.sparseIter = false
				return total
			}
			for w != 0 {
				f[i] = uint32(wi<<6 + bits.TrailingZeros64(w))
				i++
				w &= w - 1
			}
		}
		wi++
	}
	e.sparseIter = true
	e.frontier = f[:i]
	return i
}

// planIteration is countAndPlan's large-bitset tail: the count is already
// known, so only the schedule decision and the parallel compaction remain.
func (e *engine[S, A]) planIteration(active int64) {
	switch e.frontierM {
	case FrontierSparse:
		e.sparseIter = true
	default:
		e.sparseIter = active*sparseActiveDivisor <= int64(e.g.NumVertices())
	}
	if e.sparseIter {
		e.compactFrontier(active)
	}
}

// compactFrontier materializes the current active bitset as a sorted
// vertex list in e.frontier: a parallel per-chunk popcount pass sizes the
// per-chunk output offsets, a serial prefix sum over the (few) chunks
// places them, and a second parallel pass writes vertex IDs. Sorted order
// falls out of chunk order plus in-word bit order.
func (e *engine[S, A]) compactFrontier(active int64) {
	n := uint32(e.g.NumVertices())
	if cap(e.frontier) < int(active) {
		e.frontier = make([]uint32, active)
	}
	e.frontier = e.frontier[:active]
	numChunks := int((int64(n) + chunkSize - 1) / chunkSize)
	if cap(e.chunkOff) < numChunks+1 {
		e.chunkOff = make([]int64, numChunks+1)
	}
	off := e.chunkOff[:numChunks+1]
	off[0] = 0
	e.parallelDeal(int64(numChunks), func(_ int, c int64) {
		lo := uint32(c * chunkSize)
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		off[c+1] = e.cur.CountRange(lo, hi)
	})
	for c := 1; c <= numChunks; c++ {
		off[c] += off[c-1]
	}
	e.parallelDeal(int64(numChunks), func(_ int, c int64) {
		lo := uint32(c * chunkSize)
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		i := off[c]
		e.cur.Range(lo, hi, func(v uint32) {
			e.frontier[i] = v
			i++
		})
	})
}

// phaseDegree returns how many edges a phase with direction d visits at v.
func (e *engine[S, A]) phaseDegree(d Direction, v uint32) int64 {
	switch d {
	case Out:
		return int64(e.g.OutDegree(v))
	case In:
		return int64(e.g.InDegree(v))
	case Both:
		return int64(e.g.OutDegree(v) + e.g.InDegree(v))
	}
	return 0
}

// planPhase decides one phase's schedule against the compacted frontier
// and, when sparse, cuts the frontier into edge-balanced slices. The cut
// weighs each vertex as 1 + degree-in-phase-direction, so a hub gets a
// slice (or several targets' worth) of its own instead of serializing a
// long run of siblings behind it. Returns the slice boundaries (bounds[k]
// .. bounds[k+1] index e.frontier) and whether the phase runs sparse.
func (e *engine[S, A]) planPhase(d Direction) ([]int, bool) {
	if !e.sparseIter {
		return nil, false
	}
	L := len(e.frontier)
	if L == 0 {
		return nil, false
	}
	var totalEdges int64
	if d != None {
		if cap(e.prefix) < L+1 {
			e.prefix = make([]int64, L+1)
		}
		e.prefix = e.prefix[:L+1]
		e.prefix[0] = 0
		for i, v := range e.frontier {
			e.prefix[i+1] = e.prefix[i] + e.phaseDegree(d, v)
		}
		totalEdges = e.prefix[L]
		// Auto only: a frontier that still reaches a large share of all
		// arcs runs dense — the word scan is noise next to the edge work.
		if e.frontierM == FrontierAuto && totalEdges*densePhaseEdgeDivisor > e.g.NumArcs() {
			return nil, false
		}
	}
	totalCost := int64(L) + totalEdges
	slices := e.workers * sparseSlicesPerWorker
	// Never cut slices cheaper than sparseSliceMinCost: a tail iteration
	// with a handful of vertices runs serially inside parallelDeal's
	// spawn<=1 path instead of paying goroutine fan-out per phase.
	if byCost := int(totalCost / sparseSliceMinCost); slices > byCost {
		slices = byCost
	}
	if slices > L {
		slices = L
	}
	if slices < 1 {
		slices = 1
	}
	target := (totalCost + int64(slices) - 1) / int64(slices)
	bounds := append(e.bounds[:0], 0)
	if d == None {
		// Apply-style phase: no edges, slices balance by vertex count.
		for k := 1; k < slices; k++ {
			bounds = append(bounds, k*L/slices)
		}
	} else {
		next := target
		for i := 0; i+1 < L; i++ {
			cum := int64(i+1) + e.prefix[i+1]
			if cum >= next {
				bounds = append(bounds, i+1)
				for next <= cum {
					next += target
				}
			}
		}
	}
	bounds = append(bounds, L)
	e.bounds = bounds
	return bounds, true
}

// forActive iterates every active vertex under the schedule planIteration
// and planPhase chose for this phase, calling body(worker, v) and timing
// each granule (chunk or slice) into busy[worker]. The visited set and
// per-vertex work are identical across schedules; only grouping, worker
// attribution and scan cost differ. Returns the mode label executed.
func (e *engine[S, A]) forActive(d Direction, busy []time.Duration, body func(worker int, v uint32)) string {
	metricFrontierPhases.Inc()
	if bounds, sparse := e.planPhase(d); sparse {
		metricFrontierSparse.Inc()
		e.parallelDeal(int64(len(bounds)-1), func(worker int, t int64) {
			t0 := time.Now()
			for _, v := range e.frontier[bounds[t]:bounds[t+1]] {
				body(worker, v)
			}
			busy[worker] += time.Since(t0)
		})
		return modeSparse
	}
	e.parallelChunks(func(worker int, lo, hi uint32) {
		t0 := time.Now()
		visited := false
		e.cur.Range(lo, hi, func(v uint32) {
			visited = true
			body(worker, v)
		})
		if visited {
			busy[worker] += time.Since(t0)
		}
	})
	return modeDense
}

// CountRange returns the number of set bits in the vertex range [lo, hi).
// Same contract as Range: lo and hi are multiples of 64 or the ends of
// the set (bits beyond n are never set, so whole-word popcounts suffice).
func (b *bitset) CountRange(lo, hi uint32) int64 {
	wLo, wHi := int(lo>>6), int((hi+63)>>6)
	if wHi > len(b.words) {
		wHi = len(b.words)
	}
	var c int64
	for wi := wLo; wi < wHi; wi++ {
		c += int64(bits.OnesCount64(b.words[wi]))
	}
	return c
}
