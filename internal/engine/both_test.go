package engine

import (
	"testing"

	"gcbench/internal/graph"
)

// bothSum gathers and scatters in Both directions on a directed graph —
// the access pattern the bipartite CF algorithms rely on.
type bothSum struct{}

func (bothSum) Init(_ *graph.Graph, _ uint32) (float64, bool)  { return 1, true }
func (bothSum) GatherDirection() Direction                     { return Both }
func (bothSum) Gather(_ uint32, e Arc, _, o float64) float64   { return e.Weight * o }
func (bothSum) Sum(a, b float64) float64                       { return a + b }
func (bothSum) Apply(_ uint32, _, acc float64, _ bool) float64 { return acc }
func (bothSum) ScatterDirection() Direction                    { return Both }
func (bothSum) Scatter(uint32, Arc, float64, float64) bool     { return true }

func TestGatherScatterBothOnDirected(t *testing.T) {
	// 0→1 (w 2), 2→1 (w 3), 1→3 (w 5): gathering Both at vertex 1 reads
	// in-arcs from 0 and 2 and the out-arc to 3.
	b := graph.NewBuilder(4, true).Weighted()
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(2, 1, 3)
	b.AddWeightedEdge(1, 3, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[float64, float64](g, bothSum{}, Options{MaxIterations: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 1: 2·1 + 3·1 (in) + 5·1 (out) = 10.
	if res.States[1] != 10 {
		t.Fatalf("state[1] = %v, want 10", res.States[1])
	}
	// Vertex 0: only the out-arc to 1 → 2; vertex 3: in-arc from 1 → 5.
	if res.States[0] != 2 || res.States[3] != 5 {
		t.Fatalf("states = %v", res.States)
	}
	it := res.Trace.Iterations[0]
	// Each of the 3 arcs is visited from both endpoints: 6 reads, and the
	// Both-direction scatter signals across each arc both ways: 6 messages.
	if it.EdgeReads != 6 || it.Messages != 6 {
		t.Fatalf("reads=%d messages=%d, want 6 and 6", it.EdgeReads, it.Messages)
	}
}

func TestBothNormalizedToOutOnUndirected(t *testing.T) {
	// On an undirected graph, Both must not double-visit edges.
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[float64, float64](g, bothSum{}, Options{MaxIterations: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	it := res.Trace.Iterations[0]
	// 2 arcs total (one per direction), each gathered once — not twice.
	if it.EdgeReads != 2 {
		t.Fatalf("reads = %d, want 2 (no double visit)", it.EdgeReads)
	}
}
