package engine

import (
	"sync"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := newBitset(130)
	if b.Count() != 0 {
		t.Fatalf("fresh bitset count = %d", b.Count())
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(129)
	if b.Count() != 4 {
		t.Fatalf("count = %d, want 4", b.Count())
	}
	for _, i := range []uint32{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Fatal("unexpected bit set")
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatalf("count after clear = %d", b.Count())
	}
}

func TestBitsetSetAllMasksTail(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128, 1000} {
		b := newBitset(n)
		b.SetAll()
		if got := b.Count(); got != int64(n) {
			t.Fatalf("n=%d: SetAll count = %d", n, got)
		}
	}
}

func TestBitsetRange(t *testing.T) {
	b := newBitset(300)
	want := []uint32{0, 5, 63, 64, 130, 299}
	for _, v := range want {
		b.SetSerial(v)
	}
	var got []uint32
	b.Range(0, 300, func(v uint32) { got = append(got, v) })
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range visited %v, want %v", got, want)
		}
	}
	// Sub-range on word boundaries.
	got = nil
	b.Range(64, 192, func(v uint32) { got = append(got, v) })
	if len(got) != 2 || got[0] != 64 || got[1] != 130 {
		t.Fatalf("sub-range visited %v, want [64 130]", got)
	}
}

func TestBitsetConcurrentSet(t *testing.T) {
	const n = 1 << 16
	b := newBitset(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint32(w); i < n; i += 8 {
				b.Set(i)
			}
		}(w)
	}
	wg.Wait()
	if b.Count() != n {
		t.Fatalf("concurrent Set lost bits: %d of %d", b.Count(), n)
	}
}
