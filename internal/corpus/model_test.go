package corpus

import (
	"testing"

	"gcbench/internal/behavior"
	"gcbench/internal/predict"
)

func predictQuery(alg string, edges int64, alpha float64) predict.Query {
	return predict.Query{Algorithm: alg, NumEdges: edges, Alpha: alpha}
}

// fakeModelRun is fakeRun with an execution-model tag.
func fakeModelRun(alg, size string, alpha float64, model string) *behavior.Run {
	r := fakeRun(alg, size, alpha)
	r.Model = model
	return r
}

func TestKeyOfModel(t *testing.T) {
	cases := []struct {
		model, alg, size string
		alpha            float64
		want             string
	}{
		{"", "PR", "1e5", 2.5, "PR_1e5_a2.5"},
		{"gas", "PR", "1e5", 2.5, "PR_1e5_a2.5"},
		{"pregel", "PR", "1e5", 2.5, "PR_1e5_a2.5_pregel"},
		{"xstream", "CC", "1e3", 2, "CC_1e3_a2_xstream"},
		{"graphcentric", "SSSP", "1e4", 2.2, "SSSP_1e4_a2.2_graphcentric"},
	}
	for _, c := range cases {
		if got := KeyOfModel(c.model, c.alg, c.size, c.alpha); got != c.want {
			t.Errorf("KeyOfModel(%q, %s, %s, %g) = %q, want %q",
				c.model, c.alg, c.size, c.alpha, got, c.want)
		}
	}
	// The model-less helper stays the GAS key.
	if KeyOf("PR", "1e5", 2.5) != KeyOfModel("gas", "PR", "1e5", 2.5) {
		t.Error("KeyOf and KeyOfModel(gas, ...) disagree")
	}
}

// TestModelKeysNeverCollide: identical specs under two models get
// distinct first-class keys — not collision suffixes, which would make
// key assignment order-dependent.
func TestModelKeysNeverCollide(t *testing.T) {
	runs := []*behavior.Run{
		fakeModelRun("PR", "1e5", 2.5, ""),
		fakeModelRun("PR", "1e5", 2.5, "pregel"),
		fakeModelRun("PR", "1e5", 2.5, "xstream"),
	}
	snap, err := NewSnapshotFromRuns(runs, "test")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"PR_1e5_a2.5", "PR_1e5_a2.5_pregel", "PR_1e5_a2.5_xstream"}
	for i, w := range want {
		if snap.Records[i].Key != w {
			t.Errorf("record %d key = %q, want %q", i, snap.Records[i].Key, w)
		}
	}
	// Same-model duplicates still get the collision suffix.
	runs = append(runs, fakeModelRun("PR", "1e5", 2.5, "pregel"))
	snap, err = NewSnapshotFromRuns(runs, "test")
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Records[3].Key; got != "PR_1e5_a2.5_pregel_2" {
		t.Errorf("duplicate pregel key = %q, want PR_1e5_a2.5_pregel_2", got)
	}
}

func TestFilterModels(t *testing.T) {
	runs := []*behavior.Run{
		fakeModelRun("PR", "1e5", 2.5, ""),    // pre-model-axis: effective gas
		fakeModelRun("PR", "1e5", 2.5, "gas"), // explicitly tagged gas
		fakeModelRun("PR", "1e5", 2.5, "pregel"),
		fakeModelRun("CC", "1e3", 2, "xstream"),
	}
	snap, err := NewSnapshotFromRuns(runs, "test")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    Filter
		want []int
	}{
		{"gas matches tagged and untagged", Filter{Models: []string{"gas"}}, []int{0, 1}},
		{"empty-string model means gas", Filter{Models: []string{""}}, []int{0, 1}},
		{"pregel", Filter{Models: []string{"pregel"}}, []int{2}},
		{"two models", Filter{Models: []string{"pregel", "xstream"}}, []int{2, 3}},
		{"model+algorithm", Filter{Models: []string{"xstream"}, Algorithms: []string{"CC"}}, []int{3}},
		{"unknown model", Filter{Models: []string{"giraph"}}, nil},
	}
	for _, c := range cases {
		got := snap.Select(c.f)
		if len(got) != len(c.want) {
			t.Errorf("%s: Select = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: Select = %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
	if got := snap.Models(); len(got) != 3 || got[0] != "gas" || got[1] != "pregel" || got[2] != "xstream" {
		t.Errorf("Models() = %v, want [gas pregel xstream]", got)
	}
}

func TestPredictorForStaysWithinModel(t *testing.T) {
	var runs []*behavior.Run
	for _, m := range []string{"", "pregel"} {
		for _, alpha := range []float64{1.9, 2.2, 2.5} {
			for _, size := range []string{"1e4", "1e5"} {
				r := fakeModelRun("PR", size, alpha, m)
				if size == "1e5" {
					r.NumEdges = 100000
				} else {
					r.NumEdges = 10000
				}
				if m == "pregel" {
					// A deliberately different behavior signature, so a
					// cross-model mixup would be visible.
					r.Raw = behavior.Vector{5, 1e-8, 9, 3}
				}
				runs = append(runs, r)
			}
		}
	}
	snap, err := NewSnapshotFromRuns(runs, "test")
	if err != nil {
		t.Fatal(err)
	}
	gas, err := snap.PredictorFor("gas")
	if err != nil {
		t.Fatalf("PredictorFor(gas): %v", err)
	}
	pre, err := snap.PredictorFor("pregel")
	if err != nil {
		t.Fatalf("PredictorFor(pregel): %v", err)
	}
	q := struct {
		alg   string
		edges int64
		alpha float64
	}{"PR", 50000, 2.1}
	pg, err := gas.Predict(predictQuery(q.alg, q.edges, q.alpha))
	if err != nil {
		t.Fatal(err)
	}
	pp, err := pre.Predict(predictQuery(q.alg, q.edges, q.alpha))
	if err != nil {
		t.Fatal(err)
	}
	if pg.Raw == pp.Raw {
		t.Error("gas and pregel predictors returned identical vectors; per-model restriction is not applied")
	}
	if _, err := snap.PredictorFor("graphcentric"); err == nil {
		t.Error("PredictorFor(graphcentric) succeeded with no graphcentric runs")
	}
	// The default predictor is untouched by the per-model ones.
	if _, err := snap.Predictor(); err != nil {
		t.Errorf("Predictor(): %v", err)
	}
}

// TestGoldenCorpusMigration is the backward-compat guard: the shipped
// pre-model-axis corpus must load with byte-identical keys (no model
// suffixes, no new collisions) and read entirely as effective-GAS.
func TestGoldenCorpusMigration(t *testing.T) {
	snap, err := LoadFile("../../runs-standard.json")
	if err != nil {
		t.Fatalf("loading golden corpus: %v", err)
	}
	for i, rec := range snap.Records {
		if rec.Model != "" {
			t.Fatalf("record %d (%s): Model = %q, want empty on a pre-model-axis corpus",
				i, rec.Key, rec.Model)
		}
		want := KeyOf(rec.Algorithm, rec.SizeLabel, rec.Alpha)
		if rec.Key != want && !hasCollisionSuffix(rec.Key, want) {
			t.Errorf("record %d key = %q, want %q (pre-model keying)", i, rec.Key, want)
		}
	}
	if got := snap.Models(); len(got) != 1 || got[0] != behavior.ModelGAS {
		t.Fatalf("Models() = %v, want [gas]", got)
	}
	// The per-model gas predictor sees the whole corpus, same as the
	// default predictor.
	if _, err := snap.PredictorFor(""); err != nil {
		t.Fatalf("PredictorFor(\"\"): %v", err)
	}
	// Version is the Store's to assign: loading alone must not invent one
	// (a shifted corpusVersion would break cache keys downstream).
	if snap.Version != 0 {
		t.Errorf("unpublished snapshot version = %d, want 0", snap.Version)
	}
}

func hasCollisionSuffix(key, base string) bool {
	if len(key) <= len(base)+1 || key[:len(base)+1] != base+"_" {
		return false
	}
	for _, c := range key[len(base)+1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
