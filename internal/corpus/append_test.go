package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gcbench/internal/behavior"
)

func TestAppendGrowsAndRenormalizes(t *testing.T) {
	base, err := NewSnapshotFromRuns([]*behavior.Run{
		fakeRun("PR", "1e5", 2.5), fakeRun("CC", "1e3", 2),
	}, "seed-corpus")
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(base)

	// The appended run dominates every behavior dimension, so the whole
	// corpus must be rescaled around it.
	big := fakeRun("SSSP", "1e6", 2.2)
	big.Raw = behavior.Vector{100, 100, 100, 100}
	snap, err := st.Append([]*behavior.Run{big}, "job j1")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 || len(snap.Records) != 3 || snap.OKCount() != 3 {
		t.Fatalf("appended snapshot: version=%d records=%d ok=%d", snap.Version, len(snap.Records), snap.OKCount())
	}
	if snap.Source != "seed-corpus" {
		t.Errorf("append replaced Source: %q", snap.Source)
	}
	if st.Snapshot() != snap {
		t.Fatal("Append did not publish the new snapshot")
	}
	for i, p := range snap.Space.Points {
		for d := 0; d < behavior.Dims; d++ {
			if p[d] > 1.0 {
				t.Fatalf("point %d dim %d = %v: renormalization must keep every dimension ≤ 1", i, d, p[d])
			}
		}
	}
	// The dominating run sits at the unit corner; the old points shrank.
	var foundCorner bool
	for _, p := range snap.Space.Points {
		if p[0] == 1 && p[1] == 1 && p[2] == 1 && p[3] == 1 {
			foundCorner = true
		}
	}
	if !foundCorner {
		t.Fatal("dominating appended run is not at the unit corner")
	}

	if _, err := st.Append(nil, "job j2"); err == nil {
		t.Fatal("empty append accepted")
	}
}

// TestAppendReloadConcurrentReaders hammers the store's two publish
// paths from concurrent writers while readers continuously traverse
// snapshots — run under -race, it proves readers never observe a torn
// snapshot and serialized publishers never lose a version.
func TestAppendReloadConcurrentReaders(t *testing.T) {
	runs := []*behavior.Run{fakeRun("PR", "1e5", 2.5)}
	body, _ := json.Marshal(runs)
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(snap)

	const (
		readers = 6
		appends = 40
		reloads = 40
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := st.Snapshot()
				if s.Version < last {
					t.Errorf("version went backwards: %d after %d", s.Version, last)
					return
				}
				last = s.Version
				// Touch the derived indexes: a half-built snapshot would
				// trip the race detector or return inconsistent sizes.
				if s.Space != nil && len(s.Space.Points) != s.OKCount() {
					t.Errorf("torn snapshot: %d points for %d ok runs", len(s.Space.Points), s.OKCount())
					return
				}
				for _, p := range s.Space.Points {
					for d := 0; d < behavior.Dims; d++ {
						if p[d] > 1.0 {
							t.Errorf("reader saw unnormalized point %v", p)
							return
						}
					}
				}
			}
		}()
	}

	var pub sync.WaitGroup
	pub.Add(2)
	go func() {
		defer pub.Done()
		for i := 0; i < appends; i++ {
			r := fakeRun("CC", fmt.Sprintf("append-%d", i), 2)
			if _, err := st.Append([]*behavior.Run{r}, "race-test"); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer pub.Done()
		for i := 0; i < reloads; i++ {
			if _, err := st.Reload(); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
		}
	}()
	pub.Wait()
	close(stop)
	wg.Wait()

	// Serialized publishers: every publication got its own version.
	if got := st.Snapshot().Version; got != 1+appends+reloads {
		t.Fatalf("final version %d, want %d (lost publication)", got, 1+appends+reloads)
	}
}

func TestLoadFileRejectsEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("zero-byte corpus accepted")
	}
	if !strings.Contains(err.Error(), "empty") {
		t.Fatalf("error %q does not name the zero-byte cause", err)
	}
}

// TestReloadKeepsSnapshotOnEmptySource: a source file that shrank to
// zero bytes (partial rewrite caught mid-flight) must fail the reload
// and leave the current snapshot published.
func TestReloadKeepsSnapshotOnEmptySource(t *testing.T) {
	runs := []*behavior.Run{fakeRun("PR", "1e5", 2.5)}
	body, _ := json.Marshal(runs)
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(snap)
	cur := st.Snapshot()

	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Reload(); err == nil {
		t.Fatal("reload of zero-byte source succeeded")
	}
	if st.Snapshot() != cur {
		t.Fatal("failed reload replaced the published snapshot")
	}
}
