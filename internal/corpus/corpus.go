// Package corpus is the serving-side store for behavior-run corpora: an
// immutable, indexed snapshot of measured runs (loaded from a
// `gcbench sweep` corpus JSON or a checkpoint journal) behind an
// atomically swappable Store, so a long-running server can hot-reload a
// refreshed corpus without dropping or torn-reading concurrent requests.
//
// A Snapshot is strictly read-only after construction: every index is
// built up front, queries never mutate shared state, and the ensemble
// pool (the §5.2 graph-varying runs, max-normalized) is materialized once
// per snapshot. Store.Swap publishes a new snapshot with a single atomic
// pointer store; readers that already hold the old snapshot finish their
// requests against a consistent view.
package corpus

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcbench/internal/behavior"
	"gcbench/internal/predict"
	"gcbench/internal/report"
	"gcbench/internal/sweep"
)

// Record is one corpus entry: a run (nil for failed/cancelled journal
// entries that never produced a measurement) plus its campaign outcome,
// addressable by a URL-safe Key.
type Record struct {
	// Key is the record's stable, URL-safe identifier, e.g. "PR_1e5_a2.5".
	Key string
	// Run is the measured behavior run; nil when Status is not "ok".
	Run *behavior.Run
	// Status is the campaign outcome ("ok" for corpus-file loads).
	Status behavior.RunStatus
	// Err carries the failure message of a non-ok journal entry.
	Err string
	// Spec echoes the identifying tuple for records without a Run.
	Algorithm string
	SizeLabel string
	Alpha     float64
	// Model is the execution model tag, empty for GAS (the pre-model-axis
	// encoding, so old corpora rebuild byte-identical keys and wire
	// payloads).
	Model string `json:",omitempty"`
}

// Snapshot is one immutable, fully indexed corpus version.
type Snapshot struct {
	// Version is assigned by the Store on publication (1, 2, ...).
	Version int64
	// Source is the file path or description the snapshot was loaded from.
	Source string
	// LoadedAt is the snapshot's construction time.
	LoadedAt time.Time

	// Records holds every entry in load order.
	Records []Record

	// Space is the max-normalized behavior space over the ok runs
	// (nil when the snapshot holds no ok runs).
	Space *behavior.Space
	// spaceRec maps Space index → Records index.
	spaceRec []int

	// Pool is the §5.2 ensemble-design pool: the graph-varying ok runs,
	// normalized separately (nil when empty).
	Pool *behavior.Space
	// poolRec maps Pool index → Records index.
	poolRec []int

	byKey    map[string]int
	byAlg    map[string][]int
	bySize   map[string][]int
	byStatus map[behavior.RunStatus][]int
	// byModel indexes records by effective execution model ("" → "gas").
	byModel map[string][]int

	predOnce sync.Once
	pred     *predict.Predictor
	predErr  error

	// predBy holds the per-model predictors, built lazily like pred.
	predMu sync.Mutex
	predBy map[string]*modelPredictor
}

// modelPredictor is one lazily built per-model predictor.
type modelPredictor struct {
	p   *predict.Predictor
	err error
}

// Filter selects records. Empty slices mean "no restriction on this
// dimension"; alphas match within a 1e-9 tolerance; model names match by
// effective model, so "gas" selects both tagged and pre-model-axis
// (untagged) records.
type Filter struct {
	Algorithms []string
	Sizes      []string
	Alphas     []float64
	Statuses   []behavior.RunStatus
	Models     []string `json:",omitempty"`
}

// zero reports whether the filter is unrestricted.
func (f Filter) zero() bool {
	return len(f.Algorithms) == 0 && len(f.Sizes) == 0 && len(f.Alphas) == 0 &&
		len(f.Statuses) == 0 && len(f.Models) == 0
}

// alphaMatch reports whether a is in the filter's alpha set.
func alphaMatch(alphas []float64, a float64) bool {
	for _, v := range alphas {
		if math.Abs(v-a) < 1e-9 {
			return true
		}
	}
	return false
}

// KeyOf renders the canonical record key for an identifying tuple:
// URL-safe, human-readable, unique within a campaign (collisions at load
// time get a numeric suffix).
func KeyOf(algorithm, sizeLabel string, alpha float64) string {
	if alpha == 0 {
		return fmt.Sprintf("%s_%s", algorithm, sizeLabel)
	}
	return fmt.Sprintf("%s_%s_a%s", algorithm, sizeLabel, strconv.FormatFloat(alpha, 'g', -1, 64))
}

// KeyOfModel renders the record key for a model-tagged tuple: non-GAS
// records get a model suffix (e.g. "PR_1e5_a2.5_pregel"), so identical
// specs under two execution models never collide, while GAS records keep
// their pre-model-axis keys byte-identical.
func KeyOfModel(model, algorithm, sizeLabel string, alpha float64) string {
	key := KeyOf(algorithm, sizeLabel, alpha)
	if m := behavior.EffectiveModel(model); m != behavior.ModelGAS {
		key += "_" + m
	}
	return key
}

// NewSnapshotFromRuns builds a snapshot from a measured run collection
// (every record has status ok).
func NewSnapshotFromRuns(runs []*behavior.Run, source string) (*Snapshot, error) {
	records := make([]Record, 0, len(runs))
	for _, r := range runs {
		records = append(records, Record{
			Run: r, Status: behavior.StatusOK,
			Algorithm: r.Algorithm, SizeLabel: r.SizeLabel, Alpha: r.Alpha, Model: r.Model,
		})
	}
	return newSnapshot(records, source)
}

// NewSnapshotFromJournal builds a snapshot from checkpoint-journal
// entries, preserving failed/timeout/cancelled outcomes so the corpus
// accounts for every spec the campaign was asked to execute.
func NewSnapshotFromJournal(entries []sweep.JournalEntry, source string) (*Snapshot, error) {
	records := make([]Record, 0, len(entries))
	for _, e := range entries {
		rec := Record{
			Run: e.Run, Status: e.Status, Err: e.Err,
			Algorithm: string(e.Spec.Algorithm), SizeLabel: e.Spec.SizeLabel, Alpha: e.Spec.Alpha,
			Model: string(e.Spec.Model),
		}
		// A resumed-campaign journal marks restored runs "skipped"; for
		// serving they are measurements like any other.
		if rec.Status == behavior.StatusSkipped && rec.Run != nil {
			rec.Status = behavior.StatusOK
		}
		if rec.Run != nil {
			rec.Algorithm = rec.Run.Algorithm
			rec.SizeLabel = rec.Run.SizeLabel
			rec.Alpha = rec.Run.Alpha
			rec.Model = rec.Run.Model
		}
		records = append(records, rec)
	}
	return newSnapshot(records, source)
}

// NewSnapshotFromRecords builds a snapshot from pre-assembled records —
// the entry point the shard coordinator uses to rebuild its merged
// global view from per-shard partitions. Keys are (re)assigned by the
// same deterministic first-wins-suffix rule as every other constructor,
// so a record list in canonical sequence order yields exactly the keys,
// normalization and index layout a single-store load of the same
// records would. The records slice is retained and mutated (keys are
// written in place); pass a copy when the caller still shares it.
func NewSnapshotFromRecords(records []Record, source string) (*Snapshot, error) {
	return newSnapshot(records, source)
}

// LoadFile loads a snapshot from either corpus format: a runs JSON array
// (from `gcbench sweep -out`) or a JSONL checkpoint journal, detected by
// the first non-space byte.
func LoadFile(path string) (*Snapshot, error) {
	head, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	if len(head) == 0 {
		// A zero-byte corpus is a torn write (a crashed `sweep -out`, a
		// truncate-then-write editor), never a valid collection; refusing
		// here keeps Store.Reload serving the previous snapshot instead
		// of publishing an empty corpus.
		return nil, fmt.Errorf("corpus: %s is empty (partial write?); refusing to load", path)
	}
	trimmed := strings.TrimLeft(string(head), " \t\r\n")
	if strings.HasPrefix(trimmed, "[") {
		runs, err := sweep.LoadRunsFile(path)
		if err != nil {
			return nil, fmt.Errorf("corpus: loading runs file %s: %w", path, err)
		}
		return NewSnapshotFromRuns(runs, path)
	}
	entries, err := sweep.LoadJournal(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: loading journal %s: %w", path, err)
	}
	return NewSnapshotFromJournal(entries, path)
}

func newSnapshot(records []Record, source string) (*Snapshot, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("corpus: empty corpus from %s", source)
	}
	s := &Snapshot{
		Source:   source,
		LoadedAt: time.Now(),
		Records:  records,
		byKey:    make(map[string]int, len(records)),
		byAlg:    map[string][]int{},
		bySize:   map[string][]int{},
		byStatus: map[behavior.RunStatus][]int{},
		byModel:  map[string][]int{},
	}
	varying := make(map[string]bool, len(report.GraphVaryingAlgorithms))
	for _, a := range report.GraphVaryingAlgorithms {
		varying[a] = true
	}
	var okRuns, poolRuns []*behavior.Run
	for i := range s.Records {
		rec := &s.Records[i]
		key := KeyOfModel(rec.Model, rec.Algorithm, rec.SizeLabel, rec.Alpha)
		for n := 2; ; n++ {
			if _, taken := s.byKey[key]; !taken {
				break
			}
			key = fmt.Sprintf("%s_%d", KeyOfModel(rec.Model, rec.Algorithm, rec.SizeLabel, rec.Alpha), n)
		}
		rec.Key = key
		s.byKey[key] = i
		s.byAlg[rec.Algorithm] = append(s.byAlg[rec.Algorithm], i)
		s.bySize[rec.SizeLabel] = append(s.bySize[rec.SizeLabel], i)
		s.byStatus[rec.Status] = append(s.byStatus[rec.Status], i)
		s.byModel[behavior.EffectiveModel(rec.Model)] = append(s.byModel[behavior.EffectiveModel(rec.Model)], i)
		if rec.Status == behavior.StatusOK && rec.Run != nil {
			okRuns = append(okRuns, rec.Run)
			s.spaceRec = append(s.spaceRec, i)
			if varying[rec.Algorithm] {
				poolRuns = append(poolRuns, rec.Run)
				s.poolRec = append(s.poolRec, i)
			}
		}
	}
	if len(okRuns) > 0 {
		space, err := behavior.NewSpace(okRuns)
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		s.Space = space
	}
	if len(poolRuns) > 0 {
		pool, err := behavior.NewSpace(poolRuns)
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		s.Pool = pool
	}
	return s, nil
}

// Lookup returns the record index for a key.
func (s *Snapshot) Lookup(key string) (int, bool) {
	i, ok := s.byKey[key]
	return i, ok
}

// Select returns the indices of records matching the filter, ascending.
// The smallest applicable index list narrows the candidates before the
// full predicate runs, so single-dimension queries never scan the corpus.
func (s *Snapshot) Select(f Filter) []int {
	var candidates []int
	if f.zero() {
		out := make([]int, len(s.Records))
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Pick the narrowest index among the dimensions the filter restricts.
	narrow := func(lists [][]int) []int {
		var merged []int
		for _, l := range lists {
			merged = append(merged, l...)
		}
		sort.Ints(merged)
		return merged
	}
	best := -1
	consider := func(c []int) {
		if best < 0 || len(c) < best {
			best = len(c)
			candidates = c
		}
	}
	if len(f.Algorithms) > 0 {
		lists := make([][]int, 0, len(f.Algorithms))
		for _, a := range f.Algorithms {
			lists = append(lists, s.byAlg[a])
		}
		consider(narrow(lists))
	}
	if len(f.Sizes) > 0 {
		lists := make([][]int, 0, len(f.Sizes))
		for _, sz := range f.Sizes {
			lists = append(lists, s.bySize[sz])
		}
		consider(narrow(lists))
	}
	if len(f.Statuses) > 0 {
		lists := make([][]int, 0, len(f.Statuses))
		for _, st := range f.Statuses {
			lists = append(lists, s.byStatus[st])
		}
		consider(narrow(lists))
	}
	if len(f.Models) > 0 {
		lists := make([][]int, 0, len(f.Models))
		for _, m := range f.Models {
			lists = append(lists, s.byModel[behavior.EffectiveModel(m)])
		}
		consider(narrow(lists))
	}
	if candidates == nil {
		// Only an alpha restriction: scan.
		candidates = make([]int, len(s.Records))
		for i := range candidates {
			candidates[i] = i
		}
	}
	out := make([]int, 0, len(candidates))
	for _, i := range candidates {
		if s.matches(i, f) {
			out = append(out, i)
		}
	}
	return out
}

func (s *Snapshot) matches(i int, f Filter) bool {
	return f.Matches(&s.Records[i])
}

// Matches reports whether rec satisfies the filter — the single
// predicate shared by snapshot queries and the shard tier's scattered
// partial selects, so a distributed query can never diverge from a
// single-store scan.
func (f Filter) Matches(rec *Record) bool {
	if len(f.Algorithms) > 0 && !containsString(f.Algorithms, rec.Algorithm) {
		return false
	}
	if len(f.Sizes) > 0 && !containsString(f.Sizes, rec.SizeLabel) {
		return false
	}
	if len(f.Alphas) > 0 && !alphaMatch(f.Alphas, rec.Alpha) {
		return false
	}
	if len(f.Statuses) > 0 {
		found := false
		for _, st := range f.Statuses {
			if st == rec.Status {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(f.Models) > 0 {
		m := behavior.EffectiveModel(rec.Model)
		found := false
		for _, v := range f.Models {
			if behavior.EffectiveModel(v) == m {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// PoolMember reports whether rec belongs to the §5.2 ensemble-design
// pool: a measured graph-varying run. Shared with the shard tier so
// scattered candidate sets agree exactly with PoolSelect.
func PoolMember(rec *Record) bool {
	if rec.Status != behavior.StatusOK || rec.Run == nil {
		return false
	}
	for _, a := range report.GraphVaryingAlgorithms {
		if a == rec.Algorithm {
			return true
		}
	}
	return false
}

func containsString(set []string, v string) bool {
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}

// PoolSelect returns the Pool indices whose records match the filter's
// algorithm/size/alpha restrictions (status is implicitly ok — only
// measured runs enter the pool).
func (s *Snapshot) PoolSelect(f Filter) []int {
	if s.Pool == nil {
		return nil
	}
	f.Statuses = nil
	var out []int
	for pi, ri := range s.poolRec {
		if s.matches(ri, f) {
			out = append(out, pi)
		}
	}
	return out
}

// PoolRecord maps a Pool index back to its record.
func (s *Snapshot) PoolRecord(poolIdx int) *Record {
	return &s.Records[s.poolRec[poolIdx]]
}

// SpaceRecord maps a Space index back to its record.
func (s *Snapshot) SpaceRecord(spaceIdx int) *Record {
	return &s.Records[s.spaceRec[spaceIdx]]
}

// SpaceIndexOf returns the Space index of record i, or -1 when the record
// carries no measurement.
func (s *Snapshot) SpaceIndexOf(recIdx int) int {
	for si, ri := range s.spaceRec {
		if ri == recIdx {
			return si
		}
	}
	return -1
}

// OKCount returns the number of measured runs.
func (s *Snapshot) OKCount() int { return len(s.spaceRec) }

// PoolSize returns the ensemble-design pool size.
func (s *Snapshot) PoolSize() int { return len(s.poolRec) }

// Predictor returns the snapshot's behavior predictor, built once from
// the ok runs on first use.
func (s *Snapshot) Predictor() (*predict.Predictor, error) {
	s.predOnce.Do(func() {
		if s.Space == nil {
			s.predErr = fmt.Errorf("corpus: no measured runs to predict from")
			return
		}
		s.pred, s.predErr = predict.New(s.Space.Runs)
	})
	return s.pred, s.predErr
}

// PredictorFor returns a predictor restricted to the measured runs of
// one execution model (empty or "gas" selects tagged-gas and untagged
// runs alike), built once per model on first use. Prediction stays
// within-model: the same computation traverses different event counts
// under different engines, so mixing models in one nearest-neighbor
// index would interpolate across incomparable points.
func (s *Snapshot) PredictorFor(model string) (*predict.Predictor, error) {
	m := behavior.EffectiveModel(model)
	s.predMu.Lock()
	defer s.predMu.Unlock()
	if s.predBy == nil {
		s.predBy = map[string]*modelPredictor{}
	}
	e, ok := s.predBy[m]
	if !ok {
		e = &modelPredictor{}
		var runs []*behavior.Run
		if s.Space != nil {
			for _, r := range s.Space.Runs {
				if behavior.EffectiveModel(r.Model) == m {
					runs = append(runs, r)
				}
			}
		}
		if len(runs) == 0 {
			e.err = fmt.Errorf("corpus: no measured %s runs to predict from", m)
		} else {
			e.p, e.err = predict.New(runs)
		}
		s.predBy[m] = e
	}
	return e.p, e.err
}

// Models returns the distinct effective execution models present in the
// snapshot, sorted ("gas" covers untagged pre-model-axis records).
func (s *Snapshot) Models() []string {
	out := make([]string, 0, len(s.byModel))
	for m := range s.byModel {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Store publishes corpus snapshots to concurrent readers with atomic
// swap semantics. The zero value is not usable; construct with NewStore.
type Store struct {
	cur     atomic.Pointer[Snapshot]
	version atomic.Int64
	// pubMu serializes the read-modify-write publishers (Append, Reload)
	// against each other; readers never take it.
	pubMu sync.Mutex
}

// NewStore returns a store serving the given initial snapshot.
func NewStore(initial *Snapshot) *Store {
	st := &Store{}
	st.Swap(initial)
	return st
}

// Snapshot returns the current corpus version. The result is immutable;
// callers may hold it across an entire request while Swap publishes a
// newer version concurrently.
func (st *Store) Snapshot() *Snapshot { return st.cur.Load() }

// Swap atomically publishes snap as the current version, assigning it the
// next version number, and returns the previous snapshot (nil on first
// publication).
func (st *Store) Swap(snap *Snapshot) *Snapshot {
	snap.Version = st.version.Add(1)
	return st.cur.Swap(snap)
}

// Reload loads the store's configured source path and publishes it. A
// source file that shrank to zero bytes (a partial rewrite caught
// mid-flight) is rejected and the current snapshot stays published.
func (st *Store) Reload() (*Snapshot, error) {
	st.pubMu.Lock()
	defer st.pubMu.Unlock()
	cur := st.Snapshot()
	if cur == nil || cur.Source == "" {
		return nil, fmt.Errorf("corpus: store has no reloadable source")
	}
	snap, err := LoadFile(cur.Source)
	if err != nil {
		return nil, err
	}
	st.Swap(snap)
	return snap, nil
}

// Append publishes a grown corpus: the current snapshot's records plus
// one ok record per new measured run, rebuilt and re-indexed as a fresh
// snapshot. Rebuilding runs the snapshot's normalization from scratch,
// so the paper's max-normalization invariant — every behavior dimension
// ≤ 1.0 across the whole collection (§3.4) — holds however far the
// corpus grows: a new run that raises a dimension's maximum rescales
// every older point, it does not escape the unit cube.
//
// The swap is atomic: readers holding the previous snapshot finish
// against a consistent view, and concurrent Append/Reload publishers
// are serialized so no appended run is lost. from names where the runs
// came from (e.g. a job ID) for the snapshot's Source annotation.
func (st *Store) Append(runs []*behavior.Run, from string) (*Snapshot, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("corpus: nothing to append")
	}
	st.pubMu.Lock()
	defer st.pubMu.Unlock()
	cur := st.Snapshot()
	if cur == nil {
		return nil, fmt.Errorf("corpus: store has no published snapshot")
	}
	records := make([]Record, 0, len(cur.Records)+len(runs))
	records = append(records, cur.Records...)
	for _, r := range runs {
		records = append(records, Record{
			Run: r, Status: behavior.StatusOK,
			Algorithm: r.Algorithm, SizeLabel: r.SizeLabel, Alpha: r.Alpha, Model: r.Model,
		})
	}
	source := cur.Source
	if source == "" {
		source = from
	}
	snap, err := newSnapshot(records, source)
	if err != nil {
		return nil, fmt.Errorf("corpus: appending %d runs from %s: %w", len(runs), from, err)
	}
	st.Swap(snap)
	return snap, nil
}
