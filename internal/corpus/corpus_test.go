package corpus

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gcbench/internal/behavior"
	"gcbench/internal/sweep"
)

// fakeRun builds a minimal measured run for snapshot tests.
func fakeRun(alg, size string, alpha float64) *behavior.Run {
	return &behavior.Run{
		Algorithm: alg, Domain: "test", SizeLabel: size, Alpha: alpha,
		NumEdges: 1000, Iterations: 3, Converged: true,
		ActiveFraction: []float64{1, 0.5, 0.1},
		Raw:            behavior.Vector{0.5, 1e-9, 0.9, 0.3},
	}
}

func TestKeyOf(t *testing.T) {
	cases := []struct {
		alg, size string
		alpha     float64
		want      string
	}{
		{"PR", "1e5", 2.5, "PR_1e5_a2.5"},
		{"Jacobi", "1000", 0, "Jacobi_1000"},
		{"CC", "1e3", 2, "CC_1e3_a2"},
	}
	for _, c := range cases {
		if got := KeyOf(c.alg, c.size, c.alpha); got != c.want {
			t.Errorf("KeyOf(%s, %s, %g) = %q, want %q", c.alg, c.size, c.alpha, got, c.want)
		}
	}
}

func TestSnapshotIndexesAndPool(t *testing.T) {
	runs := []*behavior.Run{
		fakeRun("PR", "1e5", 2.5),
		fakeRun("CC", "1e3", 2),
		fakeRun("Jacobi", "1000", 0), // not graph-varying: in Space, not Pool
	}
	snap, err := NewSnapshotFromRuns(runs, "test")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Records); got != 3 {
		t.Fatalf("records = %d, want 3", got)
	}
	if snap.OKCount() != 3 {
		t.Errorf("OKCount = %d, want 3", snap.OKCount())
	}
	if snap.PoolSize() != 2 {
		t.Errorf("PoolSize = %d, want 2 (Jacobi excluded)", snap.PoolSize())
	}
	i, ok := snap.Lookup("PR_1e5_a2.5")
	if !ok || snap.Records[i].Algorithm != "PR" {
		t.Fatalf("Lookup(PR_1e5_a2.5) = (%d, %v)", i, ok)
	}
	for pi := 0; pi < snap.PoolSize(); pi++ {
		if alg := snap.PoolRecord(pi).Algorithm; alg == "Jacobi" {
			t.Errorf("pool contains non-graph-varying algorithm %s", alg)
		}
	}
	if si := snap.SpaceIndexOf(i); si < 0 || snap.SpaceRecord(si).Key != "PR_1e5_a2.5" {
		t.Errorf("SpaceIndexOf(%d) = %d does not round-trip", i, si)
	}
}

func TestKeyCollisionsGetSuffix(t *testing.T) {
	runs := []*behavior.Run{
		fakeRun("PR", "1e5", 2.5),
		fakeRun("PR", "1e5", 2.5),
		fakeRun("PR", "1e5", 2.5),
	}
	snap, err := NewSnapshotFromRuns(runs, "test")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"PR_1e5_a2.5", "PR_1e5_a2.5_2", "PR_1e5_a2.5_3"}
	for i, w := range want {
		if snap.Records[i].Key != w {
			t.Errorf("record %d key = %q, want %q", i, snap.Records[i].Key, w)
		}
		if j, ok := snap.Lookup(w); !ok || j != i {
			t.Errorf("Lookup(%q) = (%d, %v), want (%d, true)", w, j, ok, i)
		}
	}
}

func TestSelectFilters(t *testing.T) {
	runs := []*behavior.Run{
		fakeRun("PR", "1e5", 2.5),
		fakeRun("PR", "1e4", 2.0),
		fakeRun("CC", "1e5", 2.5),
		fakeRun("CC", "1e3", 3.0),
	}
	snap, err := NewSnapshotFromRuns(runs, "test")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    Filter
		want []int
	}{
		{"unrestricted", Filter{}, []int{0, 1, 2, 3}},
		{"algorithm", Filter{Algorithms: []string{"PR"}}, []int{0, 1}},
		{"size", Filter{Sizes: []string{"1e5"}}, []int{0, 2}},
		{"alpha only", Filter{Alphas: []float64{2.5}}, []int{0, 2}},
		{"alg+size", Filter{Algorithms: []string{"CC"}, Sizes: []string{"1e3"}}, []int{3}},
		{"status ok", Filter{Statuses: []behavior.RunStatus{behavior.StatusOK}}, []int{0, 1, 2, 3}},
		{"status failed", Filter{Statuses: []behavior.RunStatus{behavior.StatusFailed}}, nil},
		{"no match", Filter{Algorithms: []string{"SSSP"}}, nil},
		{"alpha tolerance", Filter{Alphas: []float64{2.5 + 1e-12}}, []int{0, 2}},
	}
	for _, c := range cases {
		got := snap.Select(c.f)
		if len(got) != len(c.want) {
			t.Errorf("%s: Select = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: Select = %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
}

func TestPoolSelectIgnoresStatusRestriction(t *testing.T) {
	runs := []*behavior.Run{fakeRun("PR", "1e5", 2.5), fakeRun("CC", "1e3", 2)}
	snap, err := NewSnapshotFromRuns(runs, "test")
	if err != nil {
		t.Fatal(err)
	}
	got := snap.PoolSelect(Filter{Algorithms: []string{"PR"}})
	if len(got) != 1 || snap.PoolRecord(got[0]).Algorithm != "PR" {
		t.Fatalf("PoolSelect(PR) = %v", got)
	}
	if got := snap.PoolSelect(Filter{}); len(got) != 2 {
		t.Fatalf("unrestricted PoolSelect = %v, want 2 entries", got)
	}
}

func TestEmptyCorpusRejected(t *testing.T) {
	if _, err := NewSnapshotFromRuns(nil, "test"); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestLoadFileDetectsRunsArray(t *testing.T) {
	runs := []*behavior.Run{fakeRun("PR", "1e5", 2.5), fakeRun("CC", "1e3", 2)}
	body, err := json.Marshal(runs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := os.WriteFile(path, append([]byte("  \n"), body...), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 2 || snap.OKCount() != 2 {
		t.Fatalf("records = %d ok = %d, want 2/2", len(snap.Records), snap.OKCount())
	}
	if snap.Source != path {
		t.Errorf("Source = %q, want %q", snap.Source, path)
	}
}

func TestLoadFileDetectsJournal(t *testing.T) {
	entries := []sweep.JournalEntry{
		{ID: "a", Status: behavior.StatusOK, Run: fakeRun("PR", "1e5", 2.5)},
		// Resumed-campaign restore: skipped but carrying a measurement.
		{ID: "b", Status: behavior.StatusSkipped, Run: fakeRun("CC", "1e3", 2)},
		{ID: "c", Status: behavior.StatusFailed, Err: "boom",
			Spec: sweep.Spec{Algorithm: "KC", SizeLabel: "1e4", Alpha: 2.25}},
	}
	path := filepath.Join(t.TempDir(), "journal.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	snap, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(snap.Records))
	}
	if snap.OKCount() != 2 {
		t.Errorf("OKCount = %d, want 2 (skipped+run remapped to ok)", snap.OKCount())
	}
	if st := snap.Records[1].Status; st != behavior.StatusOK {
		t.Errorf("restored record status = %s, want ok", st)
	}
	// The failed entry keeps its spec identity and error message.
	i, ok := snap.Lookup("KC_1e4_a2.25")
	if !ok {
		t.Fatalf("failed entry not indexed by spec key")
	}
	rec := snap.Records[i]
	if rec.Status != behavior.StatusFailed || rec.Err != "boom" || rec.Run != nil {
		t.Errorf("failed record = %+v", rec)
	}
	// Failed runs stay out of space and pool.
	if snap.OKCount() != 2 || snap.PoolSize() != 2 {
		t.Errorf("space/pool = %d/%d, want 2/2", snap.OKCount(), snap.PoolSize())
	}
}

func TestStoreSwapVersionsAndReload(t *testing.T) {
	runs := []*behavior.Run{fakeRun("PR", "1e5", 2.5)}
	body, _ := json.Marshal(runs)
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(snap)
	if got := st.Snapshot().Version; got != 1 {
		t.Fatalf("initial version = %d, want 1", got)
	}

	// Grow the source file and hot-reload.
	runs = append(runs, fakeRun("CC", "1e3", 2))
	body, _ = json.Marshal(runs)
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	next, err := st.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if next.Version != 2 || len(next.Records) != 2 {
		t.Fatalf("reloaded version = %d records = %d, want 2/2", next.Version, len(next.Records))
	}
	if st.Snapshot() != next {
		t.Error("Reload did not publish the new snapshot")
	}
}

// TestStoreConcurrentSwap exercises the atomic-swap contract under the
// race detector: readers always observe a fully built snapshot with a
// monotonic version while a writer republished repeatedly.
func TestStoreConcurrentSwap(t *testing.T) {
	base, err := NewSnapshotFromRuns([]*behavior.Run{fakeRun("PR", "1e5", 2.5)}, "test")
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(base)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Snapshot()
				if snap.Version < last {
					t.Errorf("version went backwards: %d after %d", snap.Version, last)
					return
				}
				last = snap.Version
				if got := snap.Select(Filter{Algorithms: []string{"PR"}}); len(got) != 1 {
					t.Errorf("torn snapshot: Select(PR) = %v", got)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		snap, err := NewSnapshotFromRuns([]*behavior.Run{fakeRun("PR", "1e5", 2.5)}, "test")
		if err != nil {
			t.Fatal(err)
		}
		st.Swap(snap)
	}
	close(stop)
	wg.Wait()
	if got := st.Snapshot().Version; got != 201 {
		t.Errorf("final version = %d, want 201", got)
	}
}
