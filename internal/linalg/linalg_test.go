package linalg

import (
	"math"
	"testing"

	"gcbench/internal/rng"
)

func TestDotNormAxpyScale(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v, want 32", Dot(x, y))
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("Axpy result %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3 || y[1] != 4.5 || y[2] != 6 {
		t.Fatalf("Scale result %v", y)
	}
}

func TestAddOuter(t *testing.T) {
	a := make([]float64, 4)
	AddOuter(a, []float64{2, 3})
	want := []float64{4, 6, 6, 9}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("AddOuter = %v, want %v", a, want)
		}
	}
}

func TestCholeskySolveKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2].
	a := []float64{4, 2, 2, 3}
	x, err := CholeskySolve(a, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.5) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [1.5 2]", x)
	}
}

func TestCholeskySolveRandomSPD(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(12)
		// Build SPD A = MᵀM + I.
		m := make([]float64, n*n)
		for i := range m {
			m[i] = r.NormFloat64()
		}
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += m[k*n+i] * m[k*n+j]
				}
				a[i*n+j] = s
			}
			a[i*n+i]++
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := MatVec(a, n, n, want)
		x, err := CholeskySolve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestCholeskySolveRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // eigenvalues 3, -1
	if _, err := CholeskySolve(a, []float64{1, 1}); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	if _, err := CholeskySolve([]float64{1, 2, 3}, []float64{1, 1}); err == nil {
		t.Fatal("non-square input accepted")
	}
}

func TestSymTriEigenvaluesKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	vals, err := SymTriEigenvalues([]float64{2, 2}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-10 || math.Abs(vals[1]-3) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want [1 3]", vals)
	}
}

func TestSymTriEigenvaluesLaplacian(t *testing.T) {
	// The path-graph Laplacian tridiagonal (diag 2, off -1, with ends 1)
	// of size n has eigenvalues 2 - 2cos(kπ/n), k = 0..n-1.
	n := 12
	diag := make([]float64, n)
	off := make([]float64, n-1)
	for i := range diag {
		diag[i] = 2
	}
	diag[0], diag[n-1] = 1, 1
	for i := range off {
		off[i] = -1
	}
	vals, err := SymTriEigenvalues(diag, off)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n))
		if math.Abs(vals[k]-want) > 1e-9 {
			t.Fatalf("eigenvalue %d = %v, want %v", k, vals[k], want)
		}
	}
}

func TestSymTriEigenvaluesSingleEntry(t *testing.T) {
	vals, err := SymTriEigenvalues([]float64{7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != 7 {
		t.Fatalf("vals = %v, want [7]", vals)
	}
}

func TestSymTriEigenvaluesDiagonalMatrix(t *testing.T) {
	vals, err := SymTriEigenvalues([]float64{3, 1, 2}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestSymTriEigenvaluesErrors(t *testing.T) {
	if _, err := SymTriEigenvalues(nil, nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := SymTriEigenvalues([]float64{1, 2, 3}, []float64{1}); err == nil {
		t.Fatal("short off-diagonal accepted")
	}
}

// Property: eigenvalue sum equals trace, eigenvalue sum of squares equals
// Frobenius norm squared, for random tridiagonals.
func TestSymTriEigenvaluesInvariants(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(20)
		diag := make([]float64, n)
		off := make([]float64, max(0, n-1))
		trace := 0.0
		frob := 0.0
		for i := range diag {
			diag[i] = r.NormFloat64() * 3
			trace += diag[i]
			frob += diag[i] * diag[i]
		}
		for i := range off {
			off[i] = r.NormFloat64()
			frob += 2 * off[i] * off[i]
		}
		vals, err := SymTriEigenvalues(diag, off)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var sum, sumSq float64
		for _, v := range vals {
			sum += v
			sumSq += v * v
		}
		if math.Abs(sum-trace) > 1e-8*(1+math.Abs(trace)) {
			t.Fatalf("trial %d: eigen-sum %v != trace %v", trial, sum, trace)
		}
		if math.Abs(sumSq-frob) > 1e-8*(1+frob) {
			t.Fatalf("trial %d: eigen-sum-sq %v != frobenius %v", trial, sumSq, frob)
		}
		// Ascending order.
		for i := 1; i < len(vals); i++ {
			if vals[i-1] > vals[i]+1e-12 {
				t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, vals)
			}
		}
	}
}
