// Package linalg provides the small dense linear algebra kernels the
// collaborative-filtering algorithms need: SPD Cholesky solves for the
// per-vertex normal equations of Alternating Least Squares, and a
// symmetric tridiagonal eigensolver for the Restarted Lanczos SVD.
//
// Matrices are row-major flat slices. Problem sizes are tiny (the factor
// rank d, typically ≤ 32), so clarity beats blocking.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y (which must be equal length).
func Dot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a·x in place.
func Axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// AddOuter accumulates A += x·xᵀ for the n×n row-major matrix A.
func AddOuter(a []float64, x []float64) {
	n := len(x)
	for i := 0; i < n; i++ {
		xi := x[i]
		row := a[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += xi * x[j]
		}
	}
}

// CholeskySolve solves A·x = b for symmetric positive-definite A (n×n
// row-major), overwriting neither input; the solution is returned. A tiny
// ridge can be added by the caller to guarantee positive-definiteness.
func CholeskySolve(a []float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n*n {
		return nil, fmt.Errorf("linalg: matrix is %d entries, want %d×%d", len(a), n, n)
	}
	// Factor A = L·Lᵀ into a copy.
	l := make([]float64, n*n)
	copy(l, a)
	for j := 0; j < n; j++ {
		d := l[j*n+j]
		for k := 0; k < j; k++ {
			d -= l[j*n+k] * l[j*n+k]
		}
		if d <= 0 {
			return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		d = math.Sqrt(d)
		l[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := l[i*n+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			l[i*n+j] = s / d
		}
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * y[k]
		}
		y[i] = s / l[i*n+i]
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	return x, nil
}

// SymTriEigenvalues returns the eigenvalues (ascending) of the symmetric
// tridiagonal matrix with the given diagonal and off-diagonal, using the
// implicit QL algorithm with Wilkinson shifts. diag has length n, off
// length n-1 (or n with the last entry ignored). Inputs are not modified.
func SymTriEigenvalues(diag, off []float64) ([]float64, error) {
	n := len(diag)
	if n == 0 {
		return nil, fmt.Errorf("linalg: empty tridiagonal matrix")
	}
	if len(off) < n-1 {
		return nil, fmt.Errorf("linalg: off-diagonal has %d entries, want at least %d", len(off), n-1)
	}
	d := append([]float64(nil), diag...)
	e := make([]float64, n)
	copy(e, off[:n-1]) // e[n-1] stays 0 as the algorithm's sentinel

	const maxSweeps = 60
	for l := 0; l < n; l++ {
		for sweep := 0; ; sweep++ {
			// Find a small off-diagonal to split at.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-15*dd {
					break
				}
			}
			if m == l {
				break
			}
			if sweep == maxSweeps {
				return nil, fmt.Errorf("linalg: tridiagonal QL did not converge at row %d", l)
			}
			// Wilkinson shift.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	// Insertion sort ascending (n is small).
	for i := 1; i < n; i++ {
		v := d[i]
		j := i - 1
		for j >= 0 && d[j] > v {
			d[j+1] = d[j]
			j--
		}
		d[j+1] = v
	}
	return d, nil
}

// MatVec computes y = A·x for the rows×cols row-major matrix A.
func MatVec(a []float64, rows, cols int, x []float64) []float64 {
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		y[i] = Dot(a[i*cols:(i+1)*cols], x)
	}
	return y
}
