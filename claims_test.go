package gcbench_test

import (
	"context"
	"math"
	"os"
	"testing"

	"gcbench"
)

// Claims-validation suite: checks the paper's §4 directional claims
// against the shipped measured corpus (runs-standard.json, regenerable
// with scripts/reproduce.sh). Skipped when the corpus is absent.
//
// Each test names the claim it validates; deviations that do NOT
// reproduce are documented in EXPERIMENTS.md instead of asserted here.

func loadStandardCorpus(t *testing.T) []*gcbench.Run {
	t.Helper()
	const path = "runs-standard.json"
	if _, err := os.Stat(path); err != nil {
		t.Skipf("corpus %s not present; run scripts/reproduce.sh", path)
	}
	runs, err := gcbench.LoadRuns(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 232 {
		t.Fatalf("corpus has %d runs, want 232", len(runs))
	}
	return runs
}

// byAlg groups corpus runs and indexes them by (size, alpha).
func byAlg(runs []*gcbench.Run, alg string) map[string]map[float64]*gcbench.Run {
	out := map[string]map[float64]*gcbench.Run{}
	for _, r := range runs {
		if r.Algorithm != alg {
			continue
		}
		if out[r.SizeLabel] == nil {
			out[r.SizeLabel] = map[float64]*gcbench.Run{}
		}
		out[r.SizeLabel][r.Alpha] = r
	}
	return out
}

const (
	dimUPDT  = 0
	dimEREAD = 2
	dimMSG   = 3
)

// Claim (§4.1, Fig. 3): "TC ... has constant EREAD for all graphs" — and
// converges in one effective iteration.
func TestClaimTCConstantEREAD(t *testing.T) {
	runs := loadStandardCorpus(t)
	for _, r := range runs {
		if r.Algorithm != "TC" {
			continue
		}
		if math.Abs(r.Raw[dimEREAD]-2.0) > 1e-9 {
			t.Fatalf("%s: TC EREAD/edge = %v, want exactly 2.0", r.ID(), r.Raw[dimEREAD])
		}
		if r.Iterations != 1 {
			t.Fatalf("%s: TC took %d iterations, want 1", r.ID(), r.Iterations)
		}
	}
}

// Claim (§4.1, Fig. 3): "TC exhibits no significant variation in behavior
// across graph size."
func TestClaimTCSizeInsensitive(t *testing.T) {
	runs := loadStandardCorpus(t)
	grid := byAlg(runs, "TC")
	for alpha := 2.0; alpha <= 3.0; alpha += 0.25 {
		minV, maxV := math.Inf(1), 0.0
		for _, perAlpha := range grid {
			r := perAlpha[alpha]
			if r == nil {
				continue
			}
			v := r.Raw[dimUPDT]
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		if maxV/minV > 1.2 {
			t.Fatalf("alpha %.2f: TC UPDT varies %.0f%% across sizes, want < 20%%",
				alpha, 100*(maxV/minV-1))
		}
	}
}

// Claim (§4.1, Fig. 2): "All metrics of KC are positively correlated to
// α" — validated for the counter-derived UPDT and MSG at every size.
func TestClaimKCMetricsRiseWithAlpha(t *testing.T) {
	runs := loadStandardCorpus(t)
	grid := byAlg(runs, "KC")
	for size, perAlpha := range grid {
		lo, hi := perAlpha[2.0], perAlpha[3.0]
		if lo == nil || hi == nil {
			t.Fatalf("size %s missing endpoints", size)
		}
		if hi.Raw[dimUPDT] <= lo.Raw[dimUPDT] {
			t.Fatalf("size %s: KC UPDT not rising with alpha: %v vs %v",
				size, lo.Raw[dimUPDT], hi.Raw[dimUPDT])
		}
		if hi.Raw[dimMSG] <= lo.Raw[dimMSG] {
			t.Fatalf("size %s: KC MSG not rising with alpha: %v vs %v",
				size, lo.Raw[dimMSG], hi.Raw[dimMSG])
		}
	}
}

// Claim (§4.1, Fig. 1): CC and SSSP "converge faster with more uniform
// degree distribution (i.e. a smaller α)".
func TestClaimCCSSSPConvergeFasterAtSmallAlpha(t *testing.T) {
	runs := loadStandardCorpus(t)
	for _, alg := range []string{"CC", "SSSP"} {
		grid := byAlg(runs, alg)
		for size, perAlpha := range grid {
			lo, hi := perAlpha[2.0], perAlpha[3.0]
			if lo == nil || hi == nil {
				t.Fatalf("%s size %s missing endpoints", alg, size)
			}
			if lo.Iterations >= hi.Iterations {
				t.Fatalf("%s size %s: %d iterations at α=2.0 not below %d at α=3.0",
					alg, size, lo.Iterations, hi.Iterations)
			}
		}
	}
}

// Claim (§4.2/4.3/4.4 + §5.6): AD, KM, NMF, SGD, SVD, Jacobi and DD keep
// every vertex active for the entire lifecycle.
func TestClaimConstantActiveFraction(t *testing.T) {
	runs := loadStandardCorpus(t)
	for _, r := range runs {
		switch r.Algorithm {
		case "AD", "KM", "NMF", "SGD", "SVD", "Jacobi", "DD":
		default:
			continue
		}
		for i, f := range r.ActiveFraction {
			if f < 0.9999 {
				t.Fatalf("%s (%s): active fraction %v at iteration %d, want 1.0",
					r.ID(), r.Algorithm, f, i)
			}
		}
	}
}

// Claim (§4.4, Fig. 11): LBP "exhibits a sharp drop in the number of
// active vertices over time".
func TestClaimLBPActivityDrops(t *testing.T) {
	runs := loadStandardCorpus(t)
	for _, r := range runs {
		if r.Algorithm != "LBP" {
			continue
		}
		af := r.ActiveFraction
		if af[0] < 0.9999 {
			t.Fatalf("%s: LBP does not start all-active", r.ID())
		}
		if last := af[len(af)-1]; last > 0.5 {
			t.Fatalf("%s: LBP final activity %v, want a sharp drop", r.ID(), last)
		}
	}
}

// Claim (§1): "in PageRank, all vertices begin active and the fraction
// gradually decreases, whereas in SSSP only the source vertex begins
// active, but the active fraction grows rapidly."
func TestClaimPRDecaysSSSPGrows(t *testing.T) {
	runs := loadStandardCorpus(t)
	for _, r := range runs {
		switch r.Algorithm {
		case "PR":
			af := r.ActiveFraction
			if af[0] < 0.9999 {
				t.Fatalf("%s: PR does not start all-active", r.ID())
			}
			if af[len(af)-1] >= af[0] {
				t.Fatalf("%s: PR activity did not decrease", r.ID())
			}
		case "SSSP":
			af := r.ActiveFraction
			if af[0] > 0.01 {
				t.Fatalf("%s: SSSP starts with %v active, want ~one vertex", r.ID(), af[0])
			}
			peak := 0.0
			for _, f := range af {
				peak = math.Max(peak, f)
			}
			if peak < 2*af[0] {
				t.Fatalf("%s: SSSP frontier never grew (start %v, peak %v)", r.ID(), af[0], peak)
			}
		}
	}
}

// Claim (§4.3, Fig. 7): ALS convergence length varies strongly across
// graphs (the paper sees ~60-fold at cluster scale; at our three-decade-
// smaller scale we require at least 3-fold).
func TestClaimALSIterationSpread(t *testing.T) {
	runs := loadStandardCorpus(t)
	minIt, maxIt := math.MaxInt32, 0
	for _, r := range runs {
		if r.Algorithm != "ALS" {
			continue
		}
		if r.Iterations < minIt {
			minIt = r.Iterations
		}
		if r.Iterations > maxIt {
			maxIt = r.Iterations
		}
	}
	if maxIt < 3*minIt {
		t.Fatalf("ALS iteration spread %d..%d below 3-fold", minIt, maxIt)
	}
}

// Claim (§4.5): "the convergence rate differs a lot across domains, by up
// to three orders of magnitude (TC vs. DD)".
func TestClaimConvergenceRateSpansOrders(t *testing.T) {
	runs := loadStandardCorpus(t)
	tc, dd := 0, 0
	for _, r := range runs {
		if r.Algorithm == "TC" && r.Iterations > tc {
			tc = r.Iterations
		}
		if r.Algorithm == "DD" && r.Iterations > dd {
			dd = r.Iterations
		}
	}
	if dd < 1000*tc {
		t.Fatalf("DD/TC iteration ratio %d/%d below three orders of magnitude", dd, tc)
	}
}

// Claim (§1, contribution 1): ~1000-fold variation across behavior
// dimensions — at least one dimension must span three orders of magnitude
// and every counter dimension at least one.
func TestClaimThousandFoldVariation(t *testing.T) {
	runs := loadStandardCorpus(t)
	ratio := func(dim int) float64 {
		minV, maxV := math.Inf(1), 0.0
		for _, r := range runs {
			v := r.Raw[dim]
			if v <= 0 {
				continue
			}
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		return maxV / minV
	}
	if r := ratio(dimMSG); r < 1000 {
		t.Fatalf("MSG variation %.0fx below 1000x", r)
	}
	for _, d := range []int{dimUPDT, dimEREAD} {
		if r := ratio(d); r < 10 {
			t.Fatalf("dimension %d variation %.0fx below 10x", d, r)
		}
	}
}

// Claim (§2/§3): behavior characterizes the (computation, execution
// model) pair, not the computation alone — the same CC on the same graph
// lands at different behavior-space points under GAS and Pregel, while
// the computed result (number of components) is conserved across models.
func TestClaimBehaviorIsModelSpecific(t *testing.T) {
	g, err := gcbench.PowerLaw(gcbench.PowerLawConfig{NumEdges: 4000, Alpha: 2.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	w := gcbench.ModelWorkload{Graph: g}
	vectors := map[gcbench.ModelName]gcbench.Vector{}
	components := map[gcbench.ModelName]float64{}
	for _, n := range []gcbench.ModelName{gcbench.ModelGAS, gcbench.ModelPregel} {
		m, err := gcbench.ModelForName(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(context.Background(), w, "CC", gcbench.ModelOptions{})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		vectors[n] = gcbench.BehaviorFromTrace(res.Trace)
		components[n] = res.Summary["components"]
	}
	if components[gcbench.ModelGAS] != components[gcbench.ModelPregel] {
		t.Fatalf("CC components differ across models: GAS %v, Pregel %v",
			components[gcbench.ModelGAS], components[gcbench.ModelPregel])
	}
	if vectors[gcbench.ModelGAS] == vectors[gcbench.ModelPregel] {
		t.Fatalf("GAS and Pregel behavior vectors identical (%v); the model axis adds no information",
			vectors[gcbench.ModelGAS])
	}
}
