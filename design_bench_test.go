// Design-path benchmark artifact: measures the ensemble-design hot
// paths this repo serves — incremental coverage swap evaluation vs a
// full Monte-Carlo recompute, and index-backed behavior prediction vs
// the linear scan — and writes BENCH_design.json for the CI regression
// baseline. Methodology follows the engine bench artifact: one warm-up,
// then best-of-reps over fixed-size op batches to shed scheduler noise.
package gcbench_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"gcbench"
)

type designBenchArtifact struct {
	Workers    int                 `json:"workers"`
	Benchmarks []designBenchResult `json:"benchmarks"`
}

type designBenchResult struct {
	Name string `json:"name"`
	Mode string `json:"mode"`
	// OpSeconds is the best-of-reps per-operation time.
	OpSeconds float64 `json:"opSeconds"`
	// SpeedupVsBaseline is baseline-mode OpSeconds / this OpSeconds
	// (1.0 for the baseline row itself).
	SpeedupVsBaseline float64 `json:"speedupVsBaseline"`
}

// designBenchPool mirrors the ensemble package's deterministic LCG pool
// so the artifact measures the same point distribution as the in-package
// benchmarks.
func designBenchPool(n int, seed uint64) []gcbench.Vector {
	pool := make([]gcbench.Vector, n)
	s := seed
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / (1 << 53)
	}
	for i := range pool {
		for d := range pool[i] {
			pool[i][d] = next()
		}
	}
	return pool
}

func designBenchCorpus(n int) []*gcbench.Run {
	runs := make([]*gcbench.Run, n)
	s := uint64(424242)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / (1 << 53)
	}
	for i := range runs {
		var raw gcbench.Vector
		for d := range raw {
			raw[d] = next()
		}
		runs[i] = &gcbench.Run{
			Algorithm: "PR", Domain: "Graph Analytics",
			NumEdges: int64(1000 + int(next()*100_000_000)), Alpha: 2 + next(),
			SizeLabel: "bench", Iterations: 10, Raw: raw,
		}
	}
	return runs
}

// measureOp times reps batches of ops calls to fn and returns the
// per-op seconds of the fastest batch, after one warm-up batch.
func measureOp(t *testing.T, ops, reps int, fn func(i int)) float64 {
	t.Helper()
	for i := 0; i < ops; i++ {
		fn(i)
	}
	best := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			fn(i)
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best.Seconds() / float64(ops)
}

// TestWriteDesignBenchArtifact measures the design-path benchmarks and
// writes BENCH_design.json when GCBENCH_DESIGN_BENCH_ARTIFACT names the
// output path. It enforces the ISSUE's acceptance bar: incremental
// coverage evaluation at least 10x faster than the naive full recompute
// at the serving configuration (n=120 pool, k=12 ensemble, 10^6
// samples). Prediction speedup is recorded but not gated — at serving
// corpus sizes the linear scan is already microseconds.
func TestWriteDesignBenchArtifact(t *testing.T) {
	out := os.Getenv("GCBENCH_DESIGN_BENCH_ARTIFACT")
	if out == "" {
		t.Skip("set GCBENCH_DESIGN_BENCH_ARTIFACT=<path> to measure and write the design bench artifact")
	}
	workers := runtime.GOMAXPROCS(0)
	art := designBenchArtifact{Workers: workers}

	// --- Coverage: incremental swap eval vs naive full recompute -----
	const poolN, k = 120, 12
	pool := designBenchPool(poolN, 5)
	est, err := gcbench.NewCoverageEstimator(gcbench.DefaultCoverageSamples, 3)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := gcbench.NewIncrementalCoverage(est, pool[:k])
	if err != nil {
		t.Fatal(err)
	}
	incSec := measureOp(t, 200, 5, func(i int) {
		ic.EvalSwap(i%k, pool[k+i%(poolN-k)])
	})
	members := append([]gcbench.Vector(nil), pool[:k]...)
	naiveSec := measureOp(t, 3, 3, func(i int) {
		old := members[i%k]
		members[i%k] = pool[k+i%(poolN-k)]
		est.Coverage(members)
		members[i%k] = old
	})
	covSpeedup := naiveSec / incSec
	art.Benchmarks = append(art.Benchmarks,
		designBenchResult{Name: "CoverageSwapEval", Mode: "naive", OpSeconds: naiveSec, SpeedupVsBaseline: 1},
		designBenchResult{Name: "CoverageSwapEval", Mode: "incremental", OpSeconds: incSec, SpeedupVsBaseline: covSpeedup},
	)
	t.Logf("coverage swap eval: incremental %.3gs/op, naive %.3gs/op — %.1fx", incSec, naiveSec, covSpeedup)
	if covSpeedup < 10 {
		t.Errorf("incremental coverage speedup %.1fx, want >= 10x (n=%d, k=%d, %d samples)",
			covSpeedup, poolN, k, gcbench.DefaultCoverageSamples)
	}

	// --- Prediction: indexed exact-hit lookup vs linear scan ---------
	runs := designBenchCorpus(4096)
	p, err := gcbench.NewPredictor(runs)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]gcbench.PredictQuery, len(runs))
	for i, r := range runs {
		queries[i] = gcbench.PredictQuery{Algorithm: r.Algorithm, NumEdges: r.NumEdges, Alpha: r.Alpha}
	}
	idxSec := measureOp(t, 2000, 5, func(i int) {
		if _, err := p.Predict(queries[i%len(queries)]); err != nil {
			t.Fatal(err)
		}
	})
	linSec := measureOp(t, 2000, 5, func(i int) {
		if _, err := p.PredictNaive(queries[i%len(queries)]); err != nil {
			t.Fatal(err)
		}
	})
	predSpeedup := linSec / idxSec
	art.Benchmarks = append(art.Benchmarks,
		designBenchResult{Name: "PredictExactHit", Mode: "linear", OpSeconds: linSec, SpeedupVsBaseline: 1},
		designBenchResult{Name: "PredictExactHit", Mode: "indexed", OpSeconds: idxSec, SpeedupVsBaseline: predSpeedup},
	)
	t.Logf("predict exact hit (n=4096): indexed %.3gs/op, linear %.3gs/op — %.1fx", idxSec, linSec, predSpeedup)

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
