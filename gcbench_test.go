// Integration tests over the public API: the workflows README promises.
package gcbench_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"gcbench"
)

func TestPublicAPIWorkflow(t *testing.T) {
	// Generate → run → behavior vector, all through the facade.
	g, err := gcbench.PowerLaw(gcbench.PowerLawConfig{NumEdges: 2000, Alpha: 2.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, ranks, err := gcbench.PageRank(g, gcbench.PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != g.NumVertices() {
		t.Fatalf("ranks length %d", len(ranks))
	}
	if out.Trace.NumIterations() == 0 {
		t.Fatal("no iterations")
	}
}

func TestPublicAPISweepToFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("mini sweep")
	}
	// A reduced hand-built plan, through sweep → corpus → figure.
	var specs []gcbench.Spec
	for _, alg := range []gcbench.AlgorithmName{"CC", "PR", "TC", "KM", "AD", "SSSP", "KC"} {
		for _, alpha := range []float64{2.0, 3.0} {
			specs = append(specs, gcbench.Spec{
				Algorithm: alg, NumEdges: 500, Alpha: alpha,
				SizeLabel: "500", Seed: uint64(alpha * 10),
			})
		}
	}
	for _, alg := range []gcbench.AlgorithmName{"ALS", "NMF", "SGD", "SVD"} {
		for _, alpha := range []float64{2.0, 3.0} {
			specs = append(specs, gcbench.Spec{
				Algorithm: alg, NumEdges: 200, Alpha: alpha,
				SizeLabel: "200", Seed: uint64(alpha * 10),
			})
		}
	}
	runs, err := gcbench.Sweep(specs, gcbench.SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Persistence round trip.
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := gcbench.SaveRuns(path, runs); err != nil {
		t.Fatal(err)
	}
	loaded, err := gcbench.LoadRuns(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(runs) {
		t.Fatalf("loaded %d runs, want %d", len(loaded), len(runs))
	}

	corpus, err := gcbench.NewCorpus(loaded)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := gcbench.Figure(corpus, "13", gcbench.FigureOptions{CoverageSamples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"CC", "PR", "ALS"} {
		if !strings.Contains(buf.String(), alg) {
			t.Fatalf("figure 13 missing %s:\n%s", alg, buf.String())
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	n, err := gcbench.ParseAlgorithm("pagerank")
	if err == nil {
		t.Fatalf("fuzzy name accepted: %v", n)
	}
	n, err = gcbench.ParseAlgorithm("pr")
	if err != nil || n != "PR" {
		t.Fatalf("ParseAlgorithm(pr) = %v, %v", n, err)
	}
	n, err = gcbench.ParseAlgorithm("Jacobi")
	if err != nil || n != "Jacobi" {
		t.Fatalf("ParseAlgorithm(Jacobi) = %v, %v", n, err)
	}
	if len(gcbench.AllAlgorithms()) != 14 {
		t.Fatalf("AllAlgorithms = %d entries, want 14", len(gcbench.AllAlgorithms()))
	}
}

func TestEnsembleAPIEndToEnd(t *testing.T) {
	// Spread/coverage over hand-made vectors through the facade.
	pts := []gcbench.Vector{
		{0, 0, 0, 0}, {1, 1, 1, 1}, {1, 0, 0, 1}, {0.5, 0.5, 0.5, 0.5},
	}
	if s := gcbench.Spread(pts[:2]); s != 2 {
		t.Fatalf("spread = %v, want 2", s)
	}
	cov, err := gcbench.NewCoverageEstimator(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c := cov.Coverage(pts); c <= 0 {
		t.Fatalf("coverage = %v", c)
	}
	idx := []int{0, 1, 2, 3}
	best, err := gcbench.BestSpreadExhaustive(pts, idx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(best[2]) != 2 {
		t.Fatalf("best pair size %d", len(best[2]))
	}
}
