// Package gcbench is a from-scratch Go reproduction of "Understanding
// Graph Computation Behavior to Enable Robust Benchmarking" (Yang & Chien,
// HPDC 2015): a synchronous Gather-Apply-Scatter graph engine instrumented
// with the paper's five behavior metrics, the fourteen graph algorithms of
// its study, synthetic graph generators for every workload domain, and the
// spread/coverage ensemble methodology for designing graph benchmarks.
//
// The typical workflow mirrors the paper:
//
//	specs, _ := gcbench.BuildPlan(gcbench.ProfileQuick, 42)   // Table 2
//	runs, _ := gcbench.Sweep(specs, gcbench.SweepConfig{})    // §4 corpus
//	corpus, _ := gcbench.NewCorpus(runs)                      // §5 space
//	rep, _ := gcbench.Figure(corpus, "18", gcbench.FigureOptions{})
//	rep.Render(os.Stdout)                                     // Figure 18
//
// Individual algorithms can be run directly on generated graphs:
//
//	g, _ := gcbench.PowerLaw(gcbench.PowerLawConfig{NumEdges: 1e5, Alpha: 2.2, Seed: 1})
//	out, ranks, _ := gcbench.PageRank(g, gcbench.PageRankOptions{})
//
// Vertex-program authors who want to add algorithms use the generic engine
// in internal/engine by vendoring or forking; the stable surface here is
// the benchmarking methodology.
package gcbench

import (
	"gcbench/internal/algorithms"
	"gcbench/internal/behavior"
	"gcbench/internal/corpus"
	"gcbench/internal/ensemble"
	"gcbench/internal/gen"
	"gcbench/internal/graph"
	"gcbench/internal/jobs"
	"gcbench/internal/loadtest"
	"gcbench/internal/model"
	"gcbench/internal/nnindex"
	"gcbench/internal/obs"
	"gcbench/internal/obs/otrace"
	"gcbench/internal/predict"
	"gcbench/internal/report"
	"gcbench/internal/serve"
	"gcbench/internal/shard"
	"gcbench/internal/sweep"
	"gcbench/internal/trace"
)

// --- Graphs ---

// Graph is the immutable CSR graph all algorithms run on.
type Graph = graph.Graph

// Builder accumulates edges into a Graph.
type Builder = graph.Builder

// MRF is a pairwise Markov Random Field (LBP and DD input).
type MRF = graph.MRF

// MatrixSystem is a sparse diagonally dominant linear system (Jacobi input).
type MatrixSystem = gen.MatrixSystem

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder { return graph.NewBuilder(n, directed) }

// ReadEdgeList, WriteEdgeList, ReadUAI and WriteUAI are the graph I/O
// entry points.
var (
	ReadEdgeList  = graph.ReadEdgeList
	WriteEdgeList = graph.WriteEdgeList
	ReadUAI       = graph.ReadUAI
	WriteUAI      = graph.WriteUAI
)

// --- Generators (§3.2 datasets) ---

// PowerLawConfig parameterizes a scale-free graph (nedges, alpha).
type PowerLawConfig = gen.PowerLawConfig

// BipartiteConfig parameterizes a CF rating graph.
type BipartiteConfig = gen.BipartiteConfig

// JacobiConfig parameterizes the linear-solver matrix workload.
type JacobiConfig = gen.JacobiConfig

// GridConfig parameterizes the LBP pixel-grid workload.
type GridConfig = gen.GridConfig

// MRFConfig parameterizes the DD random-field workload.
type MRFConfig = gen.MRFConfig

// RMATConfig parameterizes a recursive-matrix (Graph 500 style) graph.
type RMATConfig = gen.RMATConfig

// ErdosRenyiConfig parameterizes a uniform random graph.
type ErdosRenyiConfig = gen.ErdosRenyiConfig

// Generator entry points for each workload domain.
var (
	PowerLaw         = gen.PowerLaw
	Bipartite        = gen.Bipartite
	Matrix           = gen.Matrix
	Grid             = gen.Grid
	RandomMRF        = gen.MRF
	GaussianPoints2D = gen.GaussianPoints2D
	RMAT             = gen.RMAT
	ErdosRenyi       = gen.ErdosRenyi
	DegreeCV         = gen.DegreeCV
)

// --- Algorithms (§2.1) ---

// AlgorithmOptions configures any algorithm run.
type AlgorithmOptions = algorithms.Options

// FrontierMode selects the engine's active-set scheduling strategy:
// adaptive (default), always-dense bitset scans, or always-sparse
// compacted-frontier slices. The paper's behavior metrics are identical
// across modes by construction; only execution speed differs.
type FrontierMode = algorithms.FrontierMode

// Frontier scheduling modes.
const (
	FrontierAuto   = algorithms.FrontierAuto
	FrontierDense  = algorithms.FrontierDense
	FrontierSparse = algorithms.FrontierSparse
)

// ParseFrontierMode resolves a case-insensitive -frontier flag value.
var ParseFrontierMode = algorithms.ParseFrontierMode

// Output bundles a run's behavior trace and summary statistics.
type Output = algorithms.Output

// Per-algorithm option types.
type (
	PageRankOptions = algorithms.PageRankOptions
	KMeansOptions   = algorithms.KMeansOptions
	ALSOptions      = algorithms.ALSOptions
	NMFOptions      = algorithms.NMFOptions
	SGDOptions      = algorithms.SGDOptions
	SVDOptions      = algorithms.SVDOptions
	JacobiOptions   = algorithms.JacobiOptions
	LBPOptions      = algorithms.LBPOptions
	DDOptions       = algorithms.DDOptions
)

// The fourteen graph computations of the study.
var (
	ConnectedComponents            = algorithms.ConnectedComponents
	KCoreDecomposition             = algorithms.KCoreDecomposition
	TriangleCounting               = algorithms.TriangleCounting
	SingleSourceShortestPath       = algorithms.SingleSourceShortestPath
	PageRank                       = algorithms.PageRank
	ApproximateDiameter            = algorithms.ApproximateDiameter
	KMeans                         = algorithms.KMeans
	AlternatingLeastSquares        = algorithms.AlternatingLeastSquares
	NonnegativeMatrixFactorization = algorithms.NonnegativeMatrixFactorization
	StochasticGradientDescent      = algorithms.StochasticGradientDescent
	SingularValueDecomposition     = algorithms.SingularValueDecomposition
	JacobiSolve                    = algorithms.JacobiSolve
	LoopyBeliefPropagation         = algorithms.LoopyBeliefPropagation
	DualDecomposition              = algorithms.DualDecomposition
)

// AlgorithmName identifies one of the fourteen algorithms by its paper
// abbreviation.
type AlgorithmName = algorithms.Name

// Algorithm name helpers.
var (
	AllAlgorithms  = algorithms.AllNames
	ParseAlgorithm = algorithms.Parse
)

// --- Execution models ---

// ModelName identifies one of the execution models a campaign spec can
// run under: "gas" (the default synchronous Gather-Apply-Scatter
// engine), "pregel" (vertex-centric message passing), "xstream"
// (edge-streaming scatter-gather) or "graphcentric" (partition-local
// fixed points with boundary exchange). Every model populates the same
// per-iteration trace counters, so the §5 behavior space compares them
// directly.
type ModelName = model.Name

// Execution model names.
const (
	ModelGAS          = model.GAS
	ModelPregel       = model.Pregel
	ModelXStream      = model.XStream
	ModelGraphCentric = model.GraphCentric
)

// ExecutionModel is the engine-agnostic execution interface every model
// implements: report which algorithms it supports and run one of them
// over a prepared workload, returning the behavior trace and summary.
type ExecutionModel = model.Model

// ModelOptions configures an ExecutionModel run.
type ModelOptions = model.Options

// ModelWorkload bundles the prepared inputs an ExecutionModel runs on.
type ModelWorkload = model.Workload

// ModelResult is an ExecutionModel run's trace and summary statistics.
type ModelResult = model.Result

// Execution-model helpers. ParseModel resolves a case-insensitive
// -model flag value ("" = gas); ForName returns the named model's
// implementation.
var (
	AllModels        = model.AllNames
	ParseModel       = model.Parse
	ModelForName     = model.ForName
	ModelSupported   = model.Supported
	ModelsSupporting = model.Supporting
)

// --- Behavior space (§5.1) ---

// Vector is a point in the 4-D behavior space <UPDT, WORK, EREAD, MSG>.
type Vector = behavior.Vector

// Run is one measured graph computation.
type Run = behavior.Run

// Space is a max-normalized run collection.
type Space = behavior.Space

// NewSpace normalizes a run collection; Distance is the space's metric.
// BehaviorFromTrace reduces an execution trace to its behavior vector.
var (
	NewSpace          = behavior.NewSpace
	Distance          = behavior.Distance
	BehaviorFromTrace = behavior.FromTrace
)

// --- Sweeps (Table 2 campaigns) ---

// Spec identifies one graph computation of the campaign.
type Spec = sweep.Spec

// Profile selects the campaign scale.
type Profile = sweep.Profile

// Campaign profiles.
const (
	ProfileQuick    = sweep.ProfileQuick
	ProfileStandard = sweep.ProfileStandard
	ProfileLarge    = sweep.ProfileLarge
)

// SweepConfig controls campaign execution, including the resilience
// knobs (per-run Timeout, Retries, RetryBackoff, checkpoint Journal and
// the InjectFault test hook).
type SweepConfig = sweep.Config

// RunResult is the per-spec outcome of a resilient campaign.
type RunResult = sweep.RunResult

// CampaignResult aggregates a resilient campaign: per-spec results plus
// the partial corpus of successful runs.
type CampaignResult = sweep.CampaignResult

// Journal is the campaign checkpoint (append-only JSONL, atomically
// rewritten) that enables resume after interruption.
type Journal = sweep.Journal

// JournalEntry is one checkpointed run record.
type JournalEntry = sweep.JournalEntry

// RunStatus classifies a campaign run outcome.
type RunStatus = behavior.RunStatus

// Campaign run outcomes.
const (
	RunOK        = behavior.StatusOK
	RunFailed    = behavior.StatusFailed
	RunTimeout   = behavior.StatusTimeout
	RunCancelled = behavior.StatusCancelled
	RunSkipped   = behavior.StatusSkipped
)

// Campaign construction, execution and persistence. Sweep fails if any
// run failed (after finishing the rest); SweepCampaign isolates per-run
// failures and returns a partial corpus. ExportSuite writes a designed
// ensemble's workload files (edge lists, UAI MRFs) so the suite can be
// carried to any graph-processing system.
var (
	BuildPlan       = sweep.BuildPlan
	BuildPlanModels = sweep.BuildPlanModels
	Sweep           = sweep.Execute
	SweepContext    = sweep.ExecuteContext
	SweepCampaign   = sweep.ExecuteCampaign
	OpenJournal     = sweep.OpenJournal
	LoadJournal     = sweep.LoadJournal
	FaultRate       = sweep.FaultRate
	SaveRuns        = sweep.SaveRunsFile
	LoadRuns        = sweep.LoadRunsFile
	ExportSuite     = sweep.ExportSuite
)

// --- Observability ---

// RunTrace is the complete per-iteration record of one computation,
// including the engine's phase spans.
type RunTrace = trace.RunTrace

// TraceIterationStats is one iteration's counters and phase spans.
type TraceIterationStats = trace.IterationStats

// TraceWorkerSpan attributes per-phase busy time to one engine worker.
type TraceWorkerSpan = trace.WorkerSpan

// MetricsRegistry is a dependency-free metric registry with Prometheus
// text-format exposition; Metrics() returns the process-wide default
// the engine and sweep runner publish into.
type MetricsRegistry = obs.Registry

// ObsServer is the opt-in observability HTTP server (/metrics,
// /statusz, /healthz, /debug/pprof).
type ObsServer = obs.Server

// ObsServerOptions configures StartObsServer.
type ObsServerOptions = obs.ServerOptions

// CampaignTracker observes a sweep campaign live; its Snapshot is the
// /statusz payload. Attach one via SweepConfig.Tracker.
type CampaignTracker = sweep.Tracker

// CampaignStatus is a point-in-time snapshot of a tracked campaign.
type CampaignStatus = sweep.CampaignStatus

// RunProvenance documents where and when a campaign run executed.
type RunProvenance = sweep.Provenance

// TraceStore is the bounded in-memory store of request-scoped traces
// with tail-based sampling (error, shed and slowest-decile traces are
// retained preferentially). Attach one via APIServerConfig.Traces to
// trace serve → jobs → sweep → engine and query /debug/traces.
type TraceStore = otrace.Store

// TraceSpan is one span of a request-scoped trace. A nil *TraceSpan is
// valid everywhere — every method no-ops — so untraced code paths pay
// nothing.
type TraceSpan = otrace.Span

// SpanNode is the nested span-tree shape served by /debug/traces/{id}.
type SpanNode = obs.SpanNode

// Observability entry points. RunSpecTrace is the single-run engine
// entry that also returns the full trace for WriteChromeTrace.
var (
	Metrics               = obs.Default
	NewMetricsRegistry    = obs.NewRegistry
	StartObsServer        = obs.StartServer
	WriteChromeTrace      = obs.WriteChromeTrace
	WriteChromeTraceSpans = obs.WriteChromeTraceSpans
	PublishExpvar         = obs.PublishExpvar
	NewCampaignTracker    = sweep.NewTracker
	RunSpecTrace          = sweep.RunSpecTrace
	NewTraceStore         = otrace.NewStore
	BuildSpanTree         = obs.BuildSpanTree
)

// --- Ensembles (§5) ---

// CoverageEstimator Monte-Carlo-estimates ensemble coverage.
type CoverageEstimator = ensemble.CoverageEstimator

// IncrementalCoverage caches per-sample nearest-member assignments over
// an estimator's sample grid so a member swap or addition re-scores only
// the affected cells — bit-identical to a fresh Monte-Carlo estimate
// (the differential harness in internal/ensemble pins this).
type IncrementalCoverage = ensemble.IncrementalCoverage

// NewIncrementalCoverage builds the incremental state for a member set.
var NewIncrementalCoverage = ensemble.NewIncrementalCoverage

// Scored is an ensemble with its metric value.
type Scored = ensemble.Scored

// Ensemble metrics and searches. The Ctx variants abort cooperatively
// when their context is cancelled — within one search step — which is
// what lets `gcbench serve` honor per-request deadlines.
var (
	Spread                  = ensemble.Spread
	NewCoverageEstimator    = ensemble.NewCoverageEstimator
	BestSpreadExhaustive    = ensemble.BestSpreadExhaustive
	BestSpreadExhaustiveCtx = ensemble.BestSpreadExhaustiveCtx
	BestSpreadGreedy        = ensemble.BestSpreadGreedy
	BestSpreadGreedyCtx     = ensemble.BestSpreadGreedyCtx
	BestCoverageGreedy      = ensemble.BestCoverageGreedy
	BestCoverageGreedyCtx   = ensemble.BestCoverageGreedyCtx
	TopEnsembles            = ensemble.TopEnsembles
	TopEnsemblesCtx         = ensemble.TopEnsemblesCtx
	UpperBoundSpread        = ensemble.UpperBoundSpread
	UpperBoundCoverage      = ensemble.UpperBoundCoverage
)

// Metric selects a top-K objective.
type Metric = ensemble.Metric

// Top-K objectives.
const (
	MetricSpread   = ensemble.MetricSpread
	MetricCoverage = ensemble.MetricCoverage
)

// TopKOptions configures TopEnsembles.
type TopKOptions = ensemble.TopKOptions

// AnnealOptions configures simulated-annealing ensemble design.
type AnnealOptions = ensemble.AnnealOptions

// Simulated-annealing searches (stronger than greedy+exchange; see §7).
var (
	AnnealSpread      = ensemble.AnnealSpread
	AnnealSpreadCtx   = ensemble.AnnealSpreadCtx
	AnnealCoverage    = ensemble.AnnealCoverage
	AnnealCoverageCtx = ensemble.AnnealCoverageCtx
)

// --- Corpus store & serving ---

// CorpusSnapshot is one immutable, indexed corpus version.
type CorpusSnapshot = corpus.Snapshot

// CorpusRecord is one corpus entry (run + campaign outcome + stable key).
type CorpusRecord = corpus.Record

// CorpusStore publishes corpus snapshots with atomic hot-swap semantics.
type CorpusStore = corpus.Store

// CorpusFilter selects corpus records by algorithm/size/alpha/status.
type CorpusFilter = corpus.Filter

// APIServer is the ensemble-design-as-a-service HTTP server
// (`gcbench serve`): a JSON API over a hot-reloadable corpus with result
// caching, singleflight coalescing and queue-depth backpressure.
type APIServer = serve.Server

// APIServerConfig parameterizes an APIServer.
type APIServerConfig = serve.Config

// DefaultCoverageSamples is the paper's coverage sample count (10^6).
const DefaultCoverageSamples = ensemble.DefaultSamples

// Corpus-store and API-server entry points. LoadCorpusSnapshot accepts
// either corpus format: a runs JSON array or a checkpoint journal.
var (
	LoadCorpusSnapshot      = corpus.LoadFile
	NewCorpusSnapshot       = corpus.NewSnapshotFromRuns
	CorpusSnapshotOfJournal = corpus.NewSnapshotFromJournal
	NewCorpusStore          = corpus.NewStore
	CorpusKeyOf             = corpus.KeyOf
	NewAPIServer            = serve.New
)

// --- Sharded corpus serving tier ---

// ShardCluster partitions a corpus across consistent-hash shards, each
// serving reads from replicated immutable snapshots, with scatter-gather
// search and versioned per-shard hot publish. Attach one via
// APIServerConfig.Cluster (instead of Store) to serve sharded; the API's
// JSON responses are byte-identical to the single-store path.
type ShardCluster = shard.Cluster

// ShardClusterOptions parameterizes NewShardCluster.
type ShardClusterOptions = shard.Options

// ShardView is a cluster's immutable merged read view: the combined
// snapshot plus the per-shard version vector that produced it.
type ShardView = shard.View

// NewShardCluster builds an empty cluster; Load publishes the first
// corpus version to every shard and makes the cluster ready.
var NewShardCluster = shard.New

// --- Wire-transport shard processes ---

// ShardClient is the RPC-shaped interface every shard transport
// implements: in-process (LocalShard), over the wire (RemoteShard), or
// replica-aggregating (ShardReplicaSet). Inject transports via
// ShardClusterOptions.Clients.
type ShardClient = shard.ShardClient

// RemoteShard speaks the shard wire protocol to one replica process
// over pooled HTTP connections, with per-call deadlines and bounded,
// jittered retry on transport-level read failures.
type RemoteShard = shard.RemoteShard

// RemoteShardOptions parameterizes NewRemoteShard.
type RemoteShardOptions = shard.RemoteOptions

// ShardReplicaSet aggregates R replica endpoints of one shard into a
// single logical ShardClient: round-robin reads with failover to
// survivors, fan-out publishes, and Down-aware Info for /readyz.
type ShardReplicaSet = shard.ReplicaSet

// ShardSupervisor owns a fleet of shard replica processes: spawn,
// health-check, restart on crash, and rehydrate (epoch-fenced) via the
// restore hook.
type ShardSupervisor = shard.Supervisor

// ShardSupervisorOptions parameterizes NewShardSupervisor.
type ShardSupervisorOptions = shard.SupervisorOptions

// ShardProcSpec names one supervised shard replica process.
type ShardProcSpec = shard.ProcSpec

// Wire-transport entry points. ShardRPCHandler serves a ShardClient
// over the wire protocol; NewProcessShard is the single-replica shard a
// standalone `gcbench shard-serve` process wraps in it.
var (
	NewRemoteShard     = shard.NewRemoteShard
	NewShardReplicaSet = shard.NewReplicaSet
	NewShardSupervisor = shard.NewSupervisor
	ShardRPCHandler    = shard.RPCHandler
	NewProcessShard    = shard.NewProcessShard
)

// --- Load testing ---

// LoadTestConfig parameterizes RunLoadTest: a target (live base URL or
// in-process handler), worker count, a duration or request budget, and
// a weighted operation mix.
type LoadTestConfig = loadtest.Config

// LoadTestOp is one weighted operation of a load-test traffic mix.
type LoadTestOp = loadtest.Op

// LoadTestReport is a load run's distilled result: per-route latency
// percentiles, status-class counts and throughput.
type LoadTestReport = loadtest.Report

// LoadTestGate is one pass/fail criterion (p99 ceiling, request floor)
// checked against a LoadTestReport.
type LoadTestGate = loadtest.Gate

// Load-test entry points. ServeLoadMix is the default mixed-traffic
// profile against a `gcbench serve` deployment.
var (
	RunLoadTest        = loadtest.Run
	ServeLoadMix       = loadtest.ServeMix
	ServeLoadMixModels = loadtest.ServeMixModels
)

// --- Async campaign jobs ---

// JobManager queues and executes sweep campaigns asynchronously: FIFO
// admission behind a bounded running-slot/queue pair, per-job
// cancellation, a replayable event stream and terminal-state retention.
// Both `gcbench sweep` and the serve API's POST /api/campaigns execute
// through it.
type JobManager = jobs.Manager

// JobManagerConfig parameterizes a JobManager.
type JobManagerConfig = jobs.Config

// CampaignJob is one tracked asynchronous campaign.
type CampaignJob = jobs.Job

// JobRequest is the campaign submitted to a JobManager.
type JobRequest = jobs.Request

// JobStatus is a point-in-time job snapshot.
type JobStatus = jobs.Status

// JobEvent is one entry in a job's ordered progress stream.
type JobEvent = jobs.Event

// JobState is a job's lifecycle state; ok, failed and cancelled are
// terminal.
type JobState = jobs.State

// Job lifecycle states.
const (
	JobQueued    = jobs.StateQueued
	JobRunning   = jobs.StateRunning
	JobOK        = jobs.StateOK
	JobFailed    = jobs.StateFailed
	JobCancelled = jobs.StateCancelled
)

// Job-manager entry point and sentinel errors.
var (
	NewJobManager   = jobs.NewManager
	ErrJobQueueFull = jobs.ErrQueueFull
	ErrJobsClosed   = jobs.ErrClosed
	ErrJobNotFound  = jobs.ErrNotFound
)

// --- Behavior prediction (§7 future work) ---

// Predictor interpolates behavior vectors from a measured corpus.
type Predictor = predict.Predictor

// PredictQuery identifies the computation to predict.
type PredictQuery = predict.Query

// Prediction is an interpolated behavior estimate.
type Prediction = predict.Prediction

// Predictor construction and evaluation.
var (
	NewPredictor       = predict.New
	PredictLeaveOneOut = predict.LeaveOneOut
)

// NNIndex is an exact k-d nearest-neighbor index over behavior vectors —
// the structure behind Predictor's O(log n) exact-hit lookups. Nearest
// returns bit-identical results to NearestLinear, ties included.
type NNIndex = nnindex.Index

// Spatial-index entry points. NearestLinear is the linear-scan oracle
// the index is differentially tested against.
var (
	BuildNNIndex  = nnindex.Build
	NearestLinear = nnindex.NearestLinear
)

// --- Reports (figures and tables) ---

// Corpus is the normalized analysis view of a run collection.
type Corpus = report.Corpus

// FigureOptions tunes figure generation.
type FigureOptions = report.FigureOptions

// Report is a rendered figure/table reproduction.
type Report = report.Report

// Figure builders and helpers.
var (
	NewCorpus = report.NewCorpus
	Figure    = report.Figure
	FigureIDs = report.FigureIDs
)
