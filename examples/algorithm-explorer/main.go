// Algorithm explorer: run all fourteen algorithms on comparable inputs
// and print the behavior signatures of §4 — the characteristic active
// fraction shapes and the per-edge metric comparison of Figure 13.
package main

import (
	"fmt"
	"log"
	"strings"

	"gcbench"
)

func main() {
	var specs []gcbench.Spec
	for _, alg := range gcbench.AllAlgorithms() {
		spec := gcbench.Spec{Algorithm: alg, Seed: 9, SizeLabel: "demo"}
		switch alg {
		case "ALS", "NMF", "SGD", "SVD":
			spec.NumEdges, spec.Alpha = 2000, 2.5
		case "Jacobi":
			spec.NumRows = 400
		case "LBP":
			spec.NumRows = 24
		case "DD":
			spec.NumEdges = 300
		default:
			spec.NumEdges, spec.Alpha = 5000, 2.5
		}
		specs = append(specs, spec)
	}
	runs, err := gcbench.Sweep(specs, gcbench.SweepConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Active fraction over the lifecycle (each char ≈ one decile of the run):")
	fmt.Println("  █ = all active, ▅ ▂ = partial, · = nearly idle")
	for _, r := range runs {
		fmt.Printf("  %-7s %4d iters  %s  %s\n",
			r.Algorithm, r.Iterations, sparkline(r.ActiveFraction), shape(r.ActiveFraction))
	}

	fmt.Println("\nPer-edge behavior (normalized to the max across algorithms):")
	var maxV gcbench.Vector
	for _, r := range runs {
		for d := 0; d < 4; d++ {
			if r.Raw[d] > maxV[d] {
				maxV[d] = r.Raw[d]
			}
		}
	}
	fmt.Printf("  %-7s %6s %6s %6s %6s\n", "alg", "UPDT", "WORK", "EREAD", "MSG")
	for _, r := range runs {
		fmt.Printf("  %-7s", r.Algorithm)
		for d := 0; d < 4; d++ {
			v := 0.0
			if maxV[d] > 0 {
				v = r.Raw[d] / maxV[d]
			}
			fmt.Printf(" %6.3f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nNote how SSSP grows from one active vertex, PageRank decays,")
	fmt.Println("LBP drops sharply, and AD/KM/NMF/SGD/SVD stay at 1.0 — the")
	fmt.Println("diversity the paper's benchmark ensembles exploit.")
}

// sparkline compresses the active-fraction series into ten glyphs.
func sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	glyphs := []rune("·▁▂▃▄▅▆▇██")
	var b strings.Builder
	for i := 0; i < 10; i++ {
		x := xs[i*(len(xs)-1)/9]
		g := int(x * float64(len(glyphs)-1))
		if g < 0 {
			g = 0
		}
		if g >= len(glyphs) {
			g = len(glyphs) - 1
		}
		b.WriteRune(glyphs[g])
	}
	return b.String()
}

func shape(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	first, last := xs[0], xs[len(xs)-1]
	allOne := true
	for _, x := range xs {
		if x < 0.999 {
			allOne = false
			break
		}
	}
	switch {
	case allOne:
		return "constant 1.0"
	case first < 0.1 && last > first:
		return "frontier growth"
	case first > 0.9 && last < first/2:
		return "decaying"
	default:
		return "varying"
	}
}
