// Quickstart: generate a power-law graph, run an instrumented PageRank,
// and inspect the behavior metrics the paper's methodology is built on.
package main

import (
	"fmt"
	"log"

	"gcbench"
)

func main() {
	// A scale-free graph with 100k edges and degree exponent α = 2.2
	// (Eq. 1 of the paper), deterministic for the given seed.
	g, err := gcbench.PowerLaw(gcbench.PowerLawConfig{
		NumEdges: 100_000,
		Alpha:    2.2,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// PageRank with the paper's setup: all vertices start active, a vertex
	// deactivates when its rank is stable within the tolerance.
	out, ranks, err := gcbench.PageRank(g, gcbench.PageRankOptions{Tolerance: 1e-4})
	if err != nil {
		log.Fatal(err)
	}

	tr := out.Trace
	fmt.Printf("PageRank converged in %d iterations (wall %v)\n",
		tr.NumIterations(), tr.TotalWall().Round(1000))
	fmt.Printf("sum of ranks: %.1f, max rank: %.2f\n",
		out.Summary["sumRank"], out.Summary["maxRank"])

	// The five behavior metrics of §3.4.
	fmt.Println("\niter  active%   updates  edge-reads  messages")
	for _, it := range tr.Iterations {
		if it.Iteration%5 != 0 && it.Iteration != tr.NumIterations()-1 {
			continue // print every 5th
		}
		fmt.Printf("%4d  %6.1f%%  %8d  %10d  %8d\n",
			it.Iteration,
			100*float64(it.Active)/float64(g.NumVertices()),
			it.Updates, it.EdgeReads, it.Messages)
	}

	// One behavior-space point: the per-edge normalized vector of §5.1.
	v := gcbench.Run{Raw: behaviorVector(out)}
	fmt.Printf("\nbehavior vector <UPDT, WORK, EREAD, MSG> = "+
		"<%.3e, %.3e, %.3e, %.3e>\n", v.Raw[0], v.Raw[1], v.Raw[2], v.Raw[3])

	fmt.Printf("top-ranked vertex: %d\n", argmax(ranks))
}

func behaviorVector(out *gcbench.Output) gcbench.Vector {
	edges := float64(out.Trace.NumEdges)
	return gcbench.Vector{
		out.Trace.MeanUpdates() / edges,
		out.Trace.MeanApplySeconds() / edges,
		out.Trace.MeanEdgeReads() / edges,
		out.Trace.MeanMessages() / edges,
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
