// Benchmark designer: the paper's core use case. Sweep a campaign of
// graph computations, build the behavior space, and design a compact
// benchmark suite that maximizes spread and coverage — then compare it
// with the naive single-algorithm suite a practitioner might pick.
package main

import (
	"fmt"
	"log"
	"os"

	"gcbench"
)

func main() {
	// A quick-profile Table 2 campaign: 232 runs over 14 algorithms.
	specs, err := gcbench.BuildPlan(gcbench.ProfileQuick, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweeping %d graph computations...\n", len(specs))
	runs, err := gcbench.Sweep(specs, gcbench.SweepConfig{
		Progress: func(done, total int, id string) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "  %d/%d\n", done, total)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	corpus, err := gcbench.NewCorpus(runs)
	if err != nil {
		log.Fatal(err)
	}
	pool := corpus.Pool
	fmt.Printf("ensemble pool: %d graph-varying runs over 11 algorithms\n\n", pool.Len())

	idx := make([]int, pool.Len())
	for i := range idx {
		idx[i] = i
	}

	// Design a 5-member suite for spread (dispersion across the space).
	const suiteSize = 5
	spreadSets := gcbench.BestSpreadGreedy(pool.Points, idx, suiteSize)
	fmt.Printf("designed suite (max spread = %.3f):\n", spreadOf(pool.Points, spreadSets[suiteSize]))
	for _, m := range spreadSets[suiteSize] {
		fmt.Printf("  %s\n", pool.Runs[m].ID())
	}

	// And for coverage (no behavior is far from a member).
	cov, err := gcbench.NewCoverageEstimator(200_000, 7)
	if err != nil {
		log.Fatal(err)
	}
	covSets := gcbench.BestCoverageGreedy(cov, pool.Points, idx, suiteSize)
	fmt.Printf("\ndesigned suite (max coverage = %.3f):\n",
		coverageOf(cov, pool.Points, covSets[suiteSize]))
	for _, m := range covSets[suiteSize] {
		fmt.Printf("  %s\n", pool.Runs[m].ID())
	}

	// The naive alternative: five PageRank runs on different graphs —
	// the kind of ad-hoc ensemble §5.2 shows to be a poor benchmark.
	var prIdx []int
	for i, r := range pool.Runs {
		if r.Algorithm == "PR" {
			prIdx = append(prIdx, i)
		}
	}
	naive, err := gcbench.BestSpreadExhaustive(pool.Points, prIdx, suiteSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive single-algorithm suite (5 best PR runs):\n")
	fmt.Printf("  spread   %.3f vs designed %.3f\n",
		spreadOf(pool.Points, naive[suiteSize]), spreadOf(pool.Points, spreadSets[suiteSize]))
	fmt.Printf("  coverage %.3f vs designed %.3f\n",
		coverageOf(cov, pool.Points, naive[suiteSize]),
		coverageOf(cov, pool.Points, covSets[suiteSize]))
	fmt.Println("\nthe designed ensembles explore the behavior space far more efficiently —")
	fmt.Println("that is the paper's case for systematic benchmark construction.")
}

func spreadOf(pool []gcbench.Vector, idx []int) float64 {
	pts := make([]gcbench.Vector, len(idx))
	for i, j := range idx {
		pts[i] = pool[j]
	}
	return gcbench.Spread(pts)
}

func coverageOf(cov *gcbench.CoverageEstimator, pool []gcbench.Vector, idx []int) float64 {
	pts := make([]gcbench.Vector, len(idx))
	for i, j := range idx {
		pts[i] = pool[j]
	}
	return cov.Coverage(pts)
}
