// Comparative study: reproduce the paper's motivating observation
// (Table 1 / §1) that ad-hoc ensembles give capricious system
// comparisons. We compare two "graph-processing configurations" — the
// engine at 1 worker vs 8 workers (oversubscribed on small hosts) — first with a narrow ad-hoc ensemble,
// then with a behavior-diverse designed ensemble, and show how the
// narrow study misestimates the speedup a user would actually see.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"gcbench"
)

// system is one configuration under evaluation.
type system struct {
	name    string
	workers int
}

func main() {
	systems := []system{
		{"cfg-A (1 worker)", 1},
		{"cfg-B (8 workers)", 8},
	}

	// Ad-hoc ensemble: what a hurried comparison might use — PageRank on
	// two sizes of one graph family (compare Table 1's single-algorithm
	// studies).
	adhoc := []gcbench.Spec{
		{Algorithm: "PR", NumEdges: 30000, Alpha: 2.0, SizeLabel: "3e4", Seed: 1},
		{Algorithm: "PR", NumEdges: 100000, Alpha: 2.0, SizeLabel: "1e5", Seed: 2},
	}

	// Designed ensemble: algorithm + graph diversity per §5.4 — the
	// algorithms the paper finds most useful (KM, ALS, TC) plus a
	// frontier algorithm, over varied structure.
	designed := []gcbench.Spec{
		{Algorithm: "KM", NumEdges: 30000, Alpha: 2.0, SizeLabel: "3e4", Seed: 3},
		{Algorithm: "ALS", NumEdges: 10000, Alpha: 3.0, SizeLabel: "1e4", Seed: 4},
		{Algorithm: "TC", NumEdges: 100000, Alpha: 2.0, SizeLabel: "1e5", Seed: 5},
		{Algorithm: "SSSP", NumEdges: 100000, Alpha: 3.0, SizeLabel: "1e5", Seed: 6},
		{Algorithm: "SGD", NumEdges: 30000, Alpha: 2.5, SizeLabel: "3e4", Seed: 7},
	}

	fmt.Println("=== ad-hoc ensemble (PageRank only) ===")
	adhocRatio := compare(systems, adhoc)
	fmt.Println("\n=== designed ensemble (algorithm + graph diversity) ===")
	designedRatio := compare(systems, designed)

	fmt.Printf("\nad-hoc study's cfg-B speedup estimate:   %.2fx\n", adhocRatio)
	fmt.Printf("designed study's cfg-B speedup estimate: %.2fx\n", designedRatio)
	fmt.Println("\nA single-algorithm study samples one corner of the behavior space;")
	fmt.Println("per the paper, conclusions drawn from it do not transfer (§1, §5.2).")
}

// compare times each system over the ensemble and returns the geometric
// mean speedup of the second system over the first.
func compare(systems []system, specs []gcbench.Spec) float64 {
	times := make([][]time.Duration, len(systems))
	for si, sys := range systems {
		for _, spec := range specs {
			start := time.Now()
			if _, err := gcbench.Sweep([]gcbench.Spec{spec},
				gcbench.SweepConfig{Workers: sys.workers, Parallel: 1}); err != nil {
				log.Fatal(err)
			}
			times[si] = append(times[si], time.Since(start))
		}
	}
	fmt.Printf("%-24s", "run")
	for _, sys := range systems {
		fmt.Printf("  %22s", sys.name)
	}
	fmt.Println("  speedup")
	geo := 1.0
	for i, spec := range specs {
		ratio := float64(times[0][i]) / float64(times[1][i])
		geo *= ratio
		fmt.Printf("%-24s", spec.ID())
		for si := range systems {
			fmt.Printf("  %22s", times[si][i].Round(time.Millisecond))
		}
		fmt.Printf("  %6.2fx\n", ratio)
	}
	n := float64(len(specs))
	return math.Pow(geo, 1/n)
}
