// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, so `go test -bench=.` exercises every experiment's
// regeneration path. Figures 1-12 benchmark the workload behind the
// figure (the instrumented graph computation); Figure 13 benchmarks a
// whole mini-campaign; Figures 14-23 and Table 3 benchmark the ensemble
// analytics on a prebuilt corpus. `gcbench figures` prints the actual
// rows/series; these targets measure the cost of producing them.
package gcbench_test

import (
	"sync"
	"testing"

	"gcbench"
)

// benchEdges sizes the workload benchmarks.
const benchEdges = 50_000

func benchGraph(b *testing.B, alpha float64) *gcbench.Graph {
	b.Helper()
	g, err := gcbench.PowerLaw(gcbench.PowerLawConfig{
		NumEdges: benchEdges, Alpha: alpha, Seed: 7, SortAdjacency: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	pts := gcbench.GaussianPoints2D(g.NumVertices(), 8, 15, 7)
	if err := g.SetFeatures(2, pts); err != nil {
		b.Fatal(err)
	}
	return g
}

func benchRating(b *testing.B) (*gcbench.Graph, int) {
	b.Helper()
	g, users, err := gcbench.Bipartite(gcbench.BipartiteConfig{
		NumEdges: benchEdges / 5, Alpha: 2.5, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g, users
}

// --- corpus shared by the ensemble-analysis benchmarks ---

var (
	corpusOnce sync.Once
	corpus     *gcbench.Corpus
	corpusErr  error
)

func benchCorpus(b *testing.B) *gcbench.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		specs, err := gcbench.BuildPlan(gcbench.ProfileQuick, 42)
		if err != nil {
			corpusErr = err
			return
		}
		runs, err := gcbench.Sweep(specs, gcbench.SweepConfig{})
		if err != nil {
			corpusErr = err
			return
		}
		corpus, corpusErr = gcbench.NewCorpus(runs)
	})
	if corpusErr != nil {
		b.Fatal(corpusErr)
	}
	return corpus
}

// benchFigureOpt keeps the analysis benchmarks fast but representative.
var benchFigureOpt = gcbench.FigureOptions{
	CoverageSamples: 100_000,
	TopKSamples:     5_000,
	MaxSize:         10,
	TopKSize:        4,
}

func benchFigure(b *testing.B, id string) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gcbench.Figure(c, id, benchFigureOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables ---

func BenchmarkTable1Survey(b *testing.B)       { benchFigure(b, "table1") }
func BenchmarkTable2CampaignPlan(b *testing.B) { benchFigure(b, "table2") }
func BenchmarkTable3BestEnsembles(b *testing.B) {
	benchFigure(b, "table3")
}

// --- Figures 1-12: the workloads behind the behavior figures ---

func BenchmarkFig01GAActiveFraction(b *testing.B) {
	// The GA campaign's frontier-style algorithm: SSSP's active fraction
	// growth is the shape Figure 1 contrasts against CC/KC/PR.
	g := benchGraph(b, 2.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gcbench.SingleSourceShortestPath(g, 0, gcbench.AlgorithmOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02KCMetrics(b *testing.B) {
	g := benchGraph(b, 2.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gcbench.KCoreDecomposition(g, gcbench.AlgorithmOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig03TCMetrics(b *testing.B) {
	g := benchGraph(b, 2.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gcbench.TriangleCounting(g, gcbench.AlgorithmOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04PRMetrics(b *testing.B) {
	g := benchGraph(b, 2.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gcbench.PageRank(g, gcbench.PageRankOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05KMActive(b *testing.B) {
	g := benchGraph(b, 2.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := gcbench.KMeansOptions{Seed: 7}
		opt.MaxIterations = 50
		if _, _, err := gcbench.KMeans(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06KMMetrics(b *testing.B) { BenchmarkFig05KMActive(b) }

func BenchmarkFig07ALSActive(b *testing.B) {
	g, users := benchRating(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gcbench.AlternatingLeastSquares(g, users, gcbench.ALSOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08ALSMetrics(b *testing.B) { BenchmarkFig07ALSActive(b) }

func BenchmarkFig09SGDMetrics(b *testing.B) {
	g, users := benchRating(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gcbench.StochasticGradientDescent(g, users, gcbench.SGDOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10SVDMetrics(b *testing.B) {
	g, users := benchRating(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gcbench.SingularValueDecomposition(g, users, gcbench.SVDOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11LBPActive(b *testing.B) {
	m, err := gcbench.Grid(gcbench.GridConfig{Rows: 40, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gcbench.LoopyBeliefPropagation(m, gcbench.LBPOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12SolverMetrics(b *testing.B) {
	sys, err := gcbench.Matrix(gcbench.JacobiConfig{NumRows: 2000, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	mrf, err := gcbench.RandomMRF(gcbench.MRFConfig{NumEdges: 1056, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gcbench.JacobiSolve(sys, gcbench.JacobiOptions{}); err != nil {
			b.Fatal(err)
		}
		ddOpt := gcbench.DDOptions{}
		ddOpt.MaxIterations = 200
		if _, _, err := gcbench.DualDecomposition(mrf, ddOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13AllAlgorithms(b *testing.B) { benchFigure(b, "13") }

// --- Figures 14-23: ensemble analytics ---

func BenchmarkFig14SpreadSingleAlg(b *testing.B)      { benchFigure(b, "14") }
func BenchmarkFig15CoverageSingleAlg(b *testing.B)    { benchFigure(b, "15") }
func BenchmarkFig16SpreadSingleGraph(b *testing.B)    { benchFigure(b, "16") }
func BenchmarkFig17CoverageSingleGraph(b *testing.B)  { benchFigure(b, "17") }
func BenchmarkFig18SpreadUnrestricted(b *testing.B)   { benchFigure(b, "18") }
func BenchmarkFig19CoverageUnrestricted(b *testing.B) { benchFigure(b, "19") }
func BenchmarkFig20FreqSpread(b *testing.B)           { benchFigure(b, "20") }
func BenchmarkFig21FreqCoverage(b *testing.B)         { benchFigure(b, "21") }
func BenchmarkFig22SpreadLimited(b *testing.B)        { benchFigure(b, "22") }
func BenchmarkFig23CoverageLimited(b *testing.B)      { benchFigure(b, "23") }
