#!/bin/sh
# Reproduce the full evaluation: sweep the Table 2 campaign, then
# regenerate every table and figure into results/.
#
# The sweep checkpoints every completed run into
# results/runs-<profile>.json.journal; if a previous invocation was
# interrupted (Ctrl-C, timeout, crash), re-running this script resumes
# from that journal and executes only the missing runs. Delete the
# journal to force a from-scratch sweep.
# Usage: scripts/reproduce.sh [quick|standard|large]
set -eu
profile="${1:-standard}"
mkdir -p results
go build -o results/gcbench ./cmd/gcbench
out="results/runs-$profile.json"
journal="$out.journal"
if [ -f "$journal" ]; then
  echo "found $journal — resuming interrupted campaign"
  results/gcbench sweep -profile "$profile" -out "$out" \
    -resume "$journal" -timeout 30m -retries 2
else
  results/gcbench sweep -profile "$profile" -out "$out" \
    -timeout 30m -retries 2
fi
results/gcbench figures -runs "$out" -fig all \
  > "results/figures-$profile.txt"
results/gcbench figures -runs "$out" -fig all -csv \
  > "results/figures-$profile.csv"
echo "wrote results/figures-$profile.txt and .csv"
