#!/bin/sh
# Reproduce the full evaluation: sweep the Table 2 campaign, then
# regenerate every table and figure into results/.
# Usage: scripts/reproduce.sh [quick|standard|large]
set -eu
profile="${1:-standard}"
mkdir -p results
go build -o results/gcbench ./cmd/gcbench
results/gcbench sweep -profile "$profile" -out "results/runs-$profile.json"
results/gcbench figures -runs "results/runs-$profile.json" -fig all \
  > "results/figures-$profile.txt"
results/gcbench figures -runs "results/runs-$profile.json" -fig all -csv \
  > "results/figures-$profile.csv"
echo "wrote results/figures-$profile.txt and .csv"
