module gcbench

go 1.22
